//! Host C toolchain driver for the executable C backend.
//!
//! The C backend (`CBackend` in `descend_backends`) emits a portable
//! C11 (+OpenMP) translation unit whose host functions speak a tiny
//! stdin/stdout protocol: `name count v0 v1 ...` records seed the CPU
//! buffers, and every CPU buffer's final contents print back as one
//! `name count v0 ...` line. This crate closes the loop on a developer
//! machine: it finds a working host C compiler, probes OpenMP support,
//! compiles the emitted source in a scratch directory, runs the binary
//! on the same inputs the simulator consumes, and parses the dump back
//! into `HashMap<String, Vec<f64>>` — the simulator's own buffer
//! representation — so callers can compare the two executions value
//! for value.
//!
//! Everything degrades gracefully: [`Toolchain::detect`] returns
//! `None` when no compiler answers `--version` (CI and tests skip with
//! a notice), and a compiler without OpenMP still works — the probe
//! falls back to `-Wno-unknown-pragmas`, which turns the `#pragma omp`
//! lines into no-ops and runs the kernels sequentially. The phased
//! execution model is correct either way; OpenMP only adds block-level
//! parallelism.

#![deny(missing_docs)]

use std::collections::HashMap;
use std::fmt;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};

/// Errors from compiling or running an emitted translation unit.
#[derive(Debug)]
pub enum NativeError {
    /// The C compiler exited nonzero; carries its stderr.
    Compile(String),
    /// The compiled binary exited nonzero; carries its stderr.
    Run(String),
    /// The binary's stdout did not parse as `name count v0 ...` lines.
    Protocol(String),
    /// Filesystem or process-spawn failure.
    Io(std::io::Error),
}

impl fmt::Display for NativeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NativeError::Compile(s) => write!(f, "C compilation failed:\n{s}"),
            NativeError::Run(s) => write!(f, "native binary failed:\n{s}"),
            NativeError::Protocol(s) => write!(f, "malformed buffer dump: {s}"),
            NativeError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for NativeError {}

impl From<std::io::Error> for NativeError {
    fn from(e: std::io::Error) -> Self {
        NativeError::Io(e)
    }
}

/// A detected host C compiler and whether it accepts `-fopenmp`.
#[derive(Debug, Clone)]
pub struct Toolchain {
    /// Compiler executable (`$CC`, `cc`, `gcc`, or `clang`).
    pub cc: String,
    /// Whether `-fopenmp` compiled and linked a probe program.
    pub openmp: bool,
}

static SCRATCH_SEQ: AtomicU64 = AtomicU64::new(0);

/// A process-unique scratch directory under the system temp dir.
fn scratch_dir(tag: &str) -> Result<PathBuf, NativeError> {
    let n = SCRATCH_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("descend-native-{}-{n}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    Ok(dir)
}

/// Probe `cc --version`; a zero exit means the executable exists and
/// behaves like a compiler driver.
fn answers_version(cc: &str) -> bool {
    Command::new(cc)
        .arg("--version")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .map(|s| s.success())
        .unwrap_or(false)
}

impl Toolchain {
    /// Find a host C compiler: `$CC` if set, then `cc`, `gcc`, `clang`.
    /// Returns `None` if none answers `--version` — callers should skip
    /// native execution with a notice rather than fail.
    pub fn detect() -> Option<Toolchain> {
        let mut candidates: Vec<String> = Vec::new();
        if let Ok(cc) = std::env::var("CC") {
            if !cc.trim().is_empty() {
                candidates.push(cc);
            }
        }
        for cc in ["cc", "gcc", "clang"] {
            candidates.push(cc.to_string());
        }
        let cc = candidates.into_iter().find(|c| answers_version(c))?;
        let openmp = probe_openmp(&cc);
        Some(Toolchain { cc, openmp })
    }

    /// The flag set every compile uses: strict C11 with warnings as
    /// errors, plus `-fopenmp` when the probe succeeded (otherwise the
    /// OpenMP pragmas are silenced and the program runs sequentially).
    pub fn flags(&self) -> Vec<&'static str> {
        let mut flags = vec!["-std=c11", "-Wall", "-Werror", "-O1"];
        if self.openmp {
            flags.push("-fopenmp");
        } else {
            flags.push("-Wno-unknown-pragmas");
        }
        flags
    }

    /// Compile a full translation unit (one with a generated `main`)
    /// to an executable in a scratch directory.
    pub fn compile(&self, c_source: &str) -> Result<CompiledNative, NativeError> {
        let dir = scratch_dir("exe")?;
        let src = dir.join("program.c");
        let exe = dir.join("program");
        std::fs::write(&src, c_source)?;
        let out = Command::new(&self.cc)
            .args(self.flags())
            .arg("-o")
            .arg(&exe)
            .arg(&src)
            .arg("-lm")
            .output()?;
        if !out.status.success() {
            let err = String::from_utf8_lossy(&out.stderr).into_owned();
            let _ = std::fs::remove_dir_all(&dir);
            return Err(NativeError::Compile(err));
        }
        Ok(CompiledNative { dir, exe })
    }

    /// Compile-check a kernel-only translation unit (no host `main`)
    /// as an object file. Used by the corpus-wide "everything we emit
    /// is valid C" sweep.
    pub fn compile_object(&self, c_source: &str) -> Result<(), NativeError> {
        let dir = scratch_dir("obj")?;
        let src = dir.join("unit.c");
        let obj = dir.join("unit.o");
        std::fs::write(&src, c_source)?;
        let out = Command::new(&self.cc)
            .args(self.flags())
            .arg("-c")
            .arg("-o")
            .arg(&obj)
            .arg(&src)
            .output()?;
        let ok = out.status.success();
        let err = String::from_utf8_lossy(&out.stderr).into_owned();
        let _ = std::fs::remove_dir_all(&dir);
        if ok {
            Ok(())
        } else {
            Err(NativeError::Compile(err))
        }
    }
}

/// Whether an emitted translation unit carries a generated host `main`
/// (and can therefore be linked and run) or is kernel-only (compile as
/// an object with [`Toolchain::compile_object`]).
pub fn has_host_main(c_source: &str) -> bool {
    c_source.contains("int main(")
}

/// Test-compile a one-line OpenMP program; failure means the driver
/// lacks `-fopenmp` (or libgomp) and we fall back to sequential.
fn probe_openmp(cc: &str) -> bool {
    let Ok(dir) = scratch_dir("probe") else {
        return false;
    };
    let src = dir.join("probe.c");
    let exe = dir.join("probe");
    let program = "#include <omp.h>\nint main(void) {\n    int n = 0;\n#pragma omp parallel\n    {\n        n += omp_get_thread_num() >= 0;\n    }\n    return n > 0 ? 0 : 1;\n}\n";
    if std::fs::write(&src, program).is_err() {
        let _ = std::fs::remove_dir_all(&dir);
        return false;
    }
    let ok = Command::new(cc)
        .args(["-std=c11", "-fopenmp"])
        .arg("-o")
        .arg(&exe)
        .arg(&src)
        .output()
        .map(|o| o.status.success())
        .unwrap_or(false);
    let _ = std::fs::remove_dir_all(&dir);
    ok
}

/// A compiled native binary in its scratch directory; the directory is
/// removed on drop.
#[derive(Debug)]
pub struct CompiledNative {
    dir: PathBuf,
    exe: PathBuf,
}

impl CompiledNative {
    /// Path of the executable (inside the scratch directory).
    pub fn exe(&self) -> &Path {
        &self.exe
    }

    /// Run one host function on the given inputs and parse the buffer
    /// dump. `inputs` uses the simulator's representation: every buffer
    /// is `Vec<f64>` regardless of element type; the binary quantizes
    /// exactly like the simulator's `scalar_to_bits`.
    pub fn run(
        &self,
        host_fn: &str,
        inputs: &HashMap<String, Vec<f64>>,
    ) -> Result<HashMap<String, Vec<f64>>, NativeError> {
        let mut child = Command::new(&self.exe)
            .arg(host_fn)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()?;
        // Feed every input record, then close stdin so the scanf loop
        // terminates.
        {
            let mut stdin = child.stdin.take().expect("piped stdin");
            stdin.write_all(format_inputs(inputs).as_bytes())?;
        }
        let out = child.wait_with_output()?;
        if !out.status.success() {
            return Err(NativeError::Run(
                String::from_utf8_lossy(&out.stderr).into_owned(),
            ));
        }
        parse_dump(&String::from_utf8_lossy(&out.stdout))
    }
}

impl Drop for CompiledNative {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Render simulator-style inputs as the stdin protocol the generated
/// `main` reads: one `name count v0 v1 ...` record per buffer. Values
/// print with Rust's shortest round-trip formatting, which `scanf
/// %lf` parses exactly. Records are name-sorted so the stream is
/// deterministic.
pub fn format_inputs(inputs: &HashMap<String, Vec<f64>>) -> String {
    let mut names: Vec<&String> = inputs.keys().collect();
    names.sort();
    let mut out = String::new();
    for name in names {
        let vals = &inputs[name];
        out.push_str(name);
        out.push(' ');
        out.push_str(&vals.len().to_string());
        for v in vals {
            out.push(' ');
            out.push_str(&format!("{v:?}"));
        }
        out.push('\n');
    }
    out
}

/// Parse the binary's stdout — one `name count v0 v1 ...` line per CPU
/// buffer — back into the simulator's buffer representation.
pub fn parse_dump(stdout: &str) -> Result<HashMap<String, Vec<f64>>, NativeError> {
    let mut out = HashMap::new();
    for line in stdout.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut toks = line.split_whitespace();
        let name = toks
            .next()
            .ok_or_else(|| NativeError::Protocol(format!("empty record: {line:?}")))?;
        let count: usize = toks
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| NativeError::Protocol(format!("missing count: {line:?}")))?;
        let vals: Vec<f64> = toks
            .map(|t| {
                t.parse::<f64>()
                    .map_err(|_| NativeError::Protocol(format!("bad value {t:?} in {name}")))
            })
            .collect::<Result<_, _>>()?;
        if vals.len() != count {
            return Err(NativeError::Protocol(format!(
                "{name}: header says {count} values, line has {}",
                vals.len()
            )));
        }
        out.insert(name.to_string(), vals);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inputs_round_trip_through_the_protocol() {
        let mut inputs = HashMap::new();
        inputs.insert("h".to_string(), vec![1.0, -2.5, 3.25]);
        inputs.insert("a".to_string(), vec![7.0]);
        let text = format_inputs(&inputs);
        // Name-sorted, one record per line, parseable by scanf %lf.
        assert_eq!(text, "a 1 7.0\nh 3 1.0 -2.5 3.25\n");
        // The dump format is the same shape; parse_dump inverts it.
        let parsed = parse_dump("a 1 7\nh 3 1 -2.5 3.25\n").unwrap();
        assert_eq!(parsed, inputs);
    }

    #[test]
    fn parse_dump_rejects_malformed_records() {
        assert!(matches!(
            parse_dump("h two 1 2"),
            Err(NativeError::Protocol(_))
        ));
        assert!(matches!(
            parse_dump("h 3 1 2"),
            Err(NativeError::Protocol(_))
        ));
        assert!(matches!(
            parse_dump("h 1 abc"),
            Err(NativeError::Protocol(_))
        ));
        assert!(parse_dump("").unwrap().is_empty());
    }

    #[test]
    fn main_detection_distinguishes_kernel_only_units() {
        assert!(has_host_main("int main(int argc, char** argv) {"));
        assert!(!has_host_main("void kernel(double* v) {}"));
    }
}
