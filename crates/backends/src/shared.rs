//! The shared lowering layer every backend renders through.
//!
//! Index expressions are lowered exactly once, by
//! [`descend_places::lower_scalar_access`] followed by
//! [`descend_codegen::ir_gen::idx_to_expr`] — the same pipeline that
//! produces the simulator IR. [`render_ir_expr`] then prints the lowered
//! expression with backend-supplied coordinate spellings, so no backend
//! owns a private copy of index-expression printing and every target's
//! text is structurally the expression the simulator executes.

use crate::KernelBackend;
use descend_ast::term::BinOp as AstBinOp;
use descend_ast::term::UnOp as AstUnOp;
use descend_ast::ty::DimCompo;
use descend_codegen::ir_gen::idx_to_expr;
use descend_codegen::CodegenError;
use descend_exec::Space;
use descend_places::lower_scalar_access;
use descend_typeck::{ElabAccess, ElabExpr, ElabStmt, HostStmt, MemKind, MonoKernel, ScalarKind};
use gpu_sim::ir::{Axis, Expr, KernelIr, Stmt};
use std::collections::HashMap;
use std::fmt::Write as _;

/// A hardware coordinate builtin, spelled per backend.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Builtin {
    /// The block (workgroup) index.
    BlockIdx,
    /// The thread (invocation) index within a block.
    ThreadIdx,
    /// The block (workgroup) size.
    BlockDim,
    /// The grid size in blocks (workgroups).
    GridDim,
}

/// Writes `level` levels of 4-space indentation.
pub fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

/// Lowers one elaborated access to its flat element-index expression.
///
/// This is the *only* path from accesses to index expressions in the
/// emission layer; it is byte-for-byte the lowering the simulator IR is
/// built from ([`descend_codegen::kernel_to_ir`]).
///
/// # Errors
///
/// Propagates lowering failures (see [`CodegenError`]).
pub fn access_index_expr(a: &ElabAccess) -> Result<Expr, CodegenError> {
    let idx = lower_scalar_access(&a.path, &a.root_dims)
        .map_err(|e| CodegenError::Lowering(e.to_string()))?;
    idx_to_expr(&idx)
}

/// Maps an execution space to the coordinate builtin selecting it.
pub fn space_builtin(space: Space) -> Builtin {
    match space {
        Space::Block => Builtin::BlockIdx,
        Space::Thread => Builtin::ThreadIdx,
    }
}

/// Maps a dimension component to a hardware axis.
pub fn dim_axis(d: DimCompo) -> Axis {
    match d {
        DimCompo::X => Axis::X,
        DimCompo::Y => Axis::Y,
        DimCompo::Z => Axis::Z,
    }
}

/// The lower-case component letter of an axis (`x`/`y`/`z`).
pub fn axis_name(a: Axis) -> &'static str {
    match a {
        Axis::X => "x",
        Axis::Y => "y",
        Axis::Z => "z",
    }
}

/// Whether a kernel touches the given scalar kind anywhere — parameters,
/// shared staging, or thread-private locals (used by backends that need
/// an extension pragma or a narrowing note for a kind).
pub fn kernel_uses_scalar(k: &MonoKernel, kind: ScalarKind) -> bool {
    fn body_has_local(body: &[ElabStmt], kind: ScalarKind) -> bool {
        body.iter().any(|s| match s {
            ElabStmt::Local { elem, .. } => *elem == kind,
            ElabStmt::Split { fst, snd, .. } => {
                body_has_local(fst, kind) || body_has_local(snd, kind)
            }
            _ => false,
        })
    }
    k.params.iter().any(|p| p.elem == kind)
        || k.shared.iter().any(|s| s.elem == kind)
        || body_has_local(&k.body, kind)
}

fn ir_binop(op: gpu_sim::ir::BinOp) -> &'static str {
    use gpu_sim::ir::BinOp::*;
    match op {
        Add => "+",
        Sub => "-",
        Mul => "*",
        Div => "/",
        Mod => "%",
        Lt => "<",
        Le => "<=",
        Gt => ">",
        Ge => ">=",
        Eq => "==",
        Ne => "!=",
        And => "&&",
        Or => "||",
        // Unreachable from index lowering; rendered as calls for the
        // benefit of hand-built IR.
        Min => "min",
        Max => "max",
    }
}

/// Renders an IR expression with the backend's coordinate and buffer
/// spellings. Used for the index expressions, so every target's text
/// matches the simulated lowering exactly.
pub fn render_ir_expr(be: &dyn KernelBackend, e: &Expr, k: &MonoKernel, out: &mut String) {
    match e {
        Expr::LitI(v) => {
            let _ = write!(out, "{v}");
        }
        Expr::LitF(v) => {
            let _ = write!(out, "{v:?}");
        }
        Expr::LitB(v) => {
            let _ = write!(out, "{v}");
        }
        Expr::BlockIdx(a) => out.push_str(&be.builtin(Builtin::BlockIdx, *a)),
        Expr::ThreadIdx(a) => out.push_str(&be.builtin(Builtin::ThreadIdx, *a)),
        Expr::BlockDim(a) => out.push_str(&be.builtin(Builtin::BlockDim, *a)),
        Expr::GridDim(a) => out.push_str(&be.builtin(Builtin::GridDim, *a)),
        Expr::Local(i) => {
            let _ = write!(out, "l{i}");
        }
        Expr::LoadGlobal { buf, idx } => {
            let _ = write!(out, "{}[", k.params[*buf].name);
            render_ir_expr(be, idx, k, out);
            out.push(']');
        }
        Expr::LoadShared { buf, idx } => {
            let _ = write!(out, "{}[", k.shared[*buf].name);
            render_ir_expr(be, idx, k, out);
            out.push(']');
        }
        Expr::Bin(op @ (gpu_sim::ir::BinOp::Min | gpu_sim::ir::BinOp::Max), a, b) => {
            let _ = write!(out, "{}(", ir_binop(*op));
            render_ir_expr(be, a, k, out);
            out.push_str(", ");
            render_ir_expr(be, b, k, out);
            out.push(')');
        }
        Expr::Bin(op, a, b) => {
            out.push('(');
            render_ir_expr(be, a, k, out);
            let _ = write!(out, " {} ", ir_binop(*op));
            render_ir_expr(be, b, k, out);
            out.push(')');
        }
        Expr::Un(op, a) => {
            out.push_str(match op {
                gpu_sim::ir::UnOp::Neg => "-",
                gpu_sim::ir::UnOp::Not => "!",
            });
            out.push('(');
            render_ir_expr(be, a, k, out);
            out.push(')');
        }
    }
}

fn binop_str(op: AstBinOp) -> &'static str {
    match op {
        AstBinOp::Add => "+",
        AstBinOp::Sub => "-",
        AstBinOp::Mul => "*",
        AstBinOp::Div => "/",
        AstBinOp::Mod => "%",
        AstBinOp::Lt => "<",
        AstBinOp::Le => "<=",
        AstBinOp::Gt => ">",
        AstBinOp::Ge => ">=",
        AstBinOp::Eq => "==",
        AstBinOp::Ne => "!=",
        AstBinOp::And => "&&",
        AstBinOp::Or => "||",
    }
}

/// Renders elaborated kernel bodies through a backend's syntax hooks.
///
/// Statement structure (declaration-then-rename discipline, split
/// conditions, barrier placement) is fixed here; the backend only
/// chooses spellings. All accesses go through [`access_index_expr`].
pub struct BodyCx<'a> {
    be: &'a dyn KernelBackend,
    kernel: &'a MonoKernel,
    /// Rendered name per live local (uniquified on rebinding).
    local_names: HashMap<String, String>,
    decl_counter: usize,
}

impl<'a> BodyCx<'a> {
    /// A fresh body context for one kernel.
    pub fn new(be: &'a dyn KernelBackend, kernel: &'a MonoKernel) -> BodyCx<'a> {
        BodyCx {
            be,
            kernel,
            local_names: HashMap::new(),
            decl_counter: 0,
        }
    }

    fn expr(&self, e: &ElabExpr, out: &mut String) -> Result<(), CodegenError> {
        match e {
            ElabExpr::Lit(kind, v) => out.push_str(&self.be.literal(*kind, *v)),
            ElabExpr::Local(name) => {
                let n = self
                    .local_names
                    .get(name)
                    .ok_or_else(|| CodegenError::UnknownLocal(name.clone()))?;
                out.push_str(n);
            }
            ElabExpr::Load(a) => {
                let mut text = String::new();
                self.access(a, &mut text)?;
                out.push_str(&self.be.load_conversion(a.elem, text));
            }
            ElabExpr::Binary(op, x, y) => {
                out.push('(');
                self.expr(x, out)?;
                let _ = write!(out, " {} ", binop_str(*op));
                self.expr(y, out)?;
                out.push(')');
            }
            ElabExpr::Unary(op, x) => {
                out.push_str(match op {
                    AstUnOp::Neg => "-",
                    AstUnOp::Not => "!",
                });
                out.push('(');
                self.expr(x, out)?;
                out.push(')');
            }
        }
        Ok(())
    }

    fn access(&self, a: &ElabAccess, out: &mut String) -> Result<(), CodegenError> {
        let name = match a.mem {
            MemKind::GlobalParam(i) => &self.kernel.params[i].name,
            MemKind::Shared(i) => &self.kernel.shared[i].name,
        };
        let idx = access_index_expr(a)?;
        let _ = write!(out, "{name}[");
        render_ir_expr(self.be, &idx, self.kernel, out);
        out.push(']');
        Ok(())
    }

    /// Renders a statement list at the given indentation level.
    ///
    /// # Errors
    ///
    /// Propagates lowering failures (see [`CodegenError`]).
    pub fn stmts(
        &mut self,
        body: &[ElabStmt],
        out: &mut String,
        level: usize,
    ) -> Result<(), CodegenError> {
        for s in body {
            match s {
                ElabStmt::Local { name, elem, init } => {
                    let rendered = if self.local_names.contains_key(name) {
                        self.decl_counter += 1;
                        format!("{name}_{}", self.decl_counter)
                    } else {
                        name.clone()
                    };
                    indent(out, level);
                    // Render the initializer against the *previous*
                    // binding before installing the new name, so a
                    // shadowing `let x = x + ...` reads the old `x` —
                    // matching the IR lowering, which binds the slot
                    // after lowering the init.
                    let mut init_text = String::new();
                    self.expr(init, &mut init_text)?;
                    self.local_names.insert(name.clone(), rendered.clone());
                    out.push_str(&self.be.local_decl(*elem, &rendered, &init_text));
                    out.push('\n');
                }
                ElabStmt::AssignLocal { name, value } => {
                    indent(out, level);
                    let n = self
                        .local_names
                        .get(name)
                        .ok_or_else(|| CodegenError::UnknownLocal(name.clone()))?
                        .clone();
                    let _ = write!(out, "{n} = ");
                    self.expr(value, out)?;
                    out.push_str(";\n");
                }
                ElabStmt::Store { access, value } => {
                    indent(out, level);
                    self.access(access, out)?;
                    out.push_str(" = ");
                    let mut text = String::new();
                    self.expr(value, &mut text)?;
                    out.push_str(&self.be.store_conversion(access.elem, text));
                    out.push_str(";\n");
                }
                ElabStmt::Split {
                    space,
                    dim,
                    threshold,
                    fst,
                    snd,
                } => {
                    indent(out, level);
                    let coord = self.be.builtin(space_builtin(*space), dim_axis(*dim));
                    let _ = writeln!(out, "if ({coord} < {threshold}) {{");
                    self.stmts(fst, out, level + 1)?;
                    indent(out, level);
                    if snd.is_empty() {
                        out.push_str("}\n");
                    } else {
                        out.push_str("} else {\n");
                        self.stmts(snd, out, level + 1)?;
                        indent(out, level);
                        out.push_str("}\n");
                    }
                }
                ElabStmt::Sync => {
                    indent(out, level);
                    out.push_str(self.be.barrier());
                    out.push('\n');
                }
            }
        }
        Ok(())
    }
}

/// Per-variable element kind and length across a host function's
/// statements — the single home for the bookkeeping every host-stub
/// emitter needs (allocation sizes propagate through `gpu_alloc_copy`).
#[derive(Default)]
pub struct HostSizes {
    sizes: HashMap<String, (ScalarKind, u64)>,
}

impl HostSizes {
    /// A fresh, empty tracker.
    pub fn new() -> HostSizes {
        HostSizes::default()
    }

    /// Records the allocation a statement introduces, if any. Call once
    /// per statement, in order, before rendering it.
    pub fn record(&mut self, s: &HostStmt) {
        match s {
            HostStmt::AllocCpu { name, elem, len } | HostStmt::AllocGpu { name, elem, len } => {
                self.sizes.insert(name.clone(), (*elem, *len));
            }
            HostStmt::AllocGpuCopy { name, src } => {
                let inherited = self.get(src);
                self.sizes.insert(name.clone(), inherited);
            }
            HostStmt::CopyToHost { .. } | HostStmt::CopyToGpu { .. } | HostStmt::Launch { .. } => {}
        }
    }

    /// Element kind and length of a variable (`(F64, 0)` when unknown,
    /// matching the historical emitters' fallback).
    pub fn get(&self, name: &str) -> (ScalarKind, u64) {
        self.sizes
            .get(name)
            .copied()
            .unwrap_or((ScalarKind::F64, 0))
    }
}

/// Collects the lowered index expression of every memory access in an
/// elaborated kernel body (loads and stores, in syntactic order).
///
/// This is what the emitters print; comparing it against
/// [`ir_index_exprs`] of the lowered [`KernelIr`] proves text and
/// simulation share one lowering.
///
/// # Errors
///
/// Propagates lowering failures (see [`CodegenError`]).
pub fn kernel_index_exprs(k: &MonoKernel) -> Result<Vec<Expr>, CodegenError> {
    fn walk_expr(e: &ElabExpr, out: &mut Vec<Expr>) -> Result<(), CodegenError> {
        match e {
            ElabExpr::Lit(..) | ElabExpr::Local(_) => {}
            ElabExpr::Load(a) => out.push(access_index_expr(a)?),
            ElabExpr::Binary(_, x, y) => {
                walk_expr(x, out)?;
                walk_expr(y, out)?;
            }
            ElabExpr::Unary(_, x) => walk_expr(x, out)?,
        }
        Ok(())
    }
    fn walk_stmts(body: &[ElabStmt], out: &mut Vec<Expr>) -> Result<(), CodegenError> {
        for s in body {
            match s {
                ElabStmt::Local { init, .. } => walk_expr(init, out)?,
                ElabStmt::AssignLocal { value, .. } => walk_expr(value, out)?,
                ElabStmt::Store { access, value } => {
                    out.push(access_index_expr(access)?);
                    walk_expr(value, out)?;
                }
                ElabStmt::Split { fst, snd, .. } => {
                    walk_stmts(fst, out)?;
                    walk_stmts(snd, out)?;
                }
                ElabStmt::Sync => {}
            }
        }
        Ok(())
    }
    let mut out = Vec::new();
    walk_stmts(&k.body, &mut out)?;
    Ok(out)
}

/// Collects the index expression of every memory access in a simulator
/// kernel (loads and stores).
///
/// Symmetric with [`kernel_index_exprs`]: each access contributes its
/// index *as a unit*, without recursing into it — so the two collections
/// compare as multisets even if a future lowering ever nests an access
/// inside an index.
pub fn ir_index_exprs(ir: &KernelIr) -> Vec<Expr> {
    fn walk_expr(e: &Expr, out: &mut Vec<Expr>) {
        match e {
            Expr::LoadGlobal { idx, .. } | Expr::LoadShared { idx, .. } => {
                out.push((**idx).clone());
            }
            Expr::Bin(_, a, b) => {
                walk_expr(a, out);
                walk_expr(b, out);
            }
            Expr::Un(_, a) => walk_expr(a, out),
            _ => {}
        }
    }
    fn walk_stmts(body: &[Stmt], out: &mut Vec<Expr>) {
        for s in body {
            match s {
                Stmt::SetLocal(_, e) => walk_expr(e, out),
                Stmt::StoreGlobal { idx, value, .. } | Stmt::StoreShared { idx, value, .. } => {
                    out.push(idx.clone());
                    walk_expr(value, out);
                }
                Stmt::If {
                    cond,
                    then_s,
                    else_s,
                } => {
                    walk_expr(cond, out);
                    walk_stmts(then_s, out);
                    walk_stmts(else_s, out);
                }
                Stmt::Loop {
                    init, bound, body, ..
                } => {
                    walk_expr(init, out);
                    walk_expr(bound, out);
                    walk_stmts(body, out);
                }
                Stmt::Barrier => {}
            }
        }
    }
    let mut out = Vec::new();
    walk_stmts(&ir.body, &mut out);
    out
}
