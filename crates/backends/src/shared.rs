//! The shared lowering layer every backend renders through.
//!
//! Index expressions are lowered exactly once, by
//! [`descend_places::lower_scalar_access`] followed by
//! [`descend_codegen::ir_gen::idx_to_expr`] — the same pipeline that
//! produces the simulator IR. [`render_ir_expr`] then prints the lowered
//! expression with backend-supplied coordinate spellings, so no backend
//! owns a private copy of index-expression printing and every target's
//! text is structurally the expression the simulator executes.

use crate::KernelBackend;
use descend_ast::term::BinOp as AstBinOp;
use descend_ast::term::UnOp as AstUnOp;
use descend_ast::ty::DimCompo;
use descend_codegen::ir_gen::{elab_expr_to_ir, idx_to_expr, idx_to_expr_subst};
use descend_codegen::CodegenError;
use descend_exec::Space;
use descend_places::{lower_scalar_access, DYN_IDX};
use descend_typeck::{ElabAccess, ElabExpr, ElabStmt, HostStmt, MemKind, MonoKernel, ScalarKind};
use gpu_sim::ir::{Axis, Expr, KernelIr, Stmt};
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;

/// A hardware coordinate builtin, spelled per backend.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Builtin {
    /// The block (workgroup) index.
    BlockIdx,
    /// The thread (invocation) index within a block.
    ThreadIdx,
    /// The block (workgroup) size.
    BlockDim,
    /// The grid size in blocks (workgroups).
    GridDim,
}

/// Writes `level` levels of 4-space indentation.
pub fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

/// Lowers one elaborated access to its flat element-index expression.
///
/// This is the *only* path from accesses to index expressions in the
/// emission layer; it is byte-for-byte the lowering the simulator IR is
/// built from ([`descend_codegen::kernel_to_ir`]).
///
/// # Errors
///
/// Propagates lowering failures (see [`CodegenError`]).
pub fn access_index_expr(a: &ElabAccess) -> Result<Expr, CodegenError> {
    let idx = lower_scalar_access(&a.path, &a.root_dims)
        .map_err(|e| CodegenError::Lowering(e.to_string()))?;
    idx_to_expr(&idx)
}

/// Mirrors the slot assignment of the IR lowering
/// (`descend_codegen`'s `LowerCx`): every `Local` declaration takes the
/// next slot, rebinding a name takes a fresh slot. Walking an elaborated
/// body in syntactic order with this map reproduces the exact `Local`
/// indices the simulator IR uses, which is what lets the emission layer
/// build atomic-scatter index expressions that equal the IR's node for
/// node.
#[derive(Default)]
pub struct SlotMap {
    map: HashMap<String, usize>,
    next: usize,
}

impl SlotMap {
    /// A fresh, empty map.
    pub fn new() -> SlotMap {
        SlotMap::default()
    }

    /// Declares (or rebinds) a local, returning its slot.
    pub fn declare(&mut self, name: &str) -> usize {
        let slot = self.next;
        self.next += 1;
        self.map.insert(name.to_string(), slot);
        slot
    }

    /// The live slot of a name.
    pub fn get(&self, name: &str) -> Option<usize> {
        self.map.get(name).copied()
    }
}

/// Visits every statement of an elaborated body in syntactic order,
/// recursing into both branches of splits — the one tree walk every
/// whole-body query (atomic targets, scalar-kind scans, backend-specific
/// feature detection) shares, so adding a nesting statement kind means
/// updating exactly this function.
pub fn for_each_stmt<'a>(body: &'a [ElabStmt], f: &mut dyn FnMut(&'a ElabStmt)) {
    for s in body {
        f(s);
        if let ElabStmt::Split { fst, snd, .. } = s {
            for_each_stmt(fst, f);
            for_each_stmt(snd, f);
        }
    }
}

/// Visits every value expression of an elaborated body (statement
/// operands and their subexpressions, in syntactic order) — the
/// expression-level companion of [`for_each_stmt`], shared by feature
/// scans such as [`kernel_uses_shuffle`].
pub fn for_each_expr<'a>(body: &'a [ElabStmt], f: &mut dyn FnMut(&'a ElabExpr)) {
    fn walk<'a>(e: &'a ElabExpr, f: &mut dyn FnMut(&'a ElabExpr)) {
        f(e);
        match e {
            ElabExpr::Binary(_, a, b) => {
                walk(a, f);
                walk(b, f);
            }
            ElabExpr::Unary(_, a) | ElabExpr::Shfl { value: a, .. } => walk(a, f),
            ElabExpr::Lit(..) | ElabExpr::Local(_) | ElabExpr::Load(_) => {}
        }
    }
    for_each_stmt(body, &mut |s| match s {
        ElabStmt::Local { init: e, .. } | ElabStmt::AssignLocal { value: e, .. } => walk(e, f),
        ElabStmt::Store { value, .. } => walk(value, f),
        ElabStmt::Atomic { index, value, .. } => {
            if let Some(ie) = index {
                walk(ie, f);
            }
            walk(value, f);
        }
        ElabStmt::Split { .. } | ElabStmt::Sync | ElabStmt::Src(_) => {}
    });
}

/// Whether the kernel performs a warp shuffle anywhere. Backends whose
/// targets gate subgroup operations behind a pragma or enable directive
/// (OpenCL's `cl_khr_subgroup_shuffle*`, WGSL's `enable subgroups;`)
/// key off this.
pub fn kernel_uses_shuffle(k: &MonoKernel) -> bool {
    let mut hit = false;
    for_each_expr(&k.body, &mut |e| {
        hit |= matches!(e, ElabExpr::Shfl { .. });
    });
    hit
}

/// The buffers an elaborated kernel updates atomically anywhere in its
/// body. Backends whose buffer declarations change for atomic targets
/// (WGSL's `array<atomic<T>>`) and the shared renderer (plain accesses to
/// such buffers) both key off this set.
pub fn atomic_targets(k: &MonoKernel) -> HashSet<MemKind> {
    let mut out = HashSet::new();
    for_each_stmt(&k.body, &mut |s| {
        if let ElabStmt::Atomic { access, .. } = s {
            out.insert(access.mem);
        }
    });
    out
}

/// Builds the full element-index IR expression of an atomic access: the
/// static part comes from the shared `lower_scalar_access` pipeline; the
/// scatter form splices the runtime index (converted by
/// [`elab_expr_to_ir`]) in place of the [`DYN_IDX`] sentinel. This is
/// exactly the expression `kernel_to_ir` puts in the simulator IR.
///
/// # Errors
///
/// Propagates lowering failures (see [`CodegenError`]).
pub fn atomic_index_expr(
    access: &ElabAccess,
    index: Option<&ElabExpr>,
    locals: &dyn Fn(&str) -> Option<usize>,
) -> Result<Expr, CodegenError> {
    let raw = lower_scalar_access(&access.path, &access.root_dims)
        .map_err(|e| CodegenError::Lowering(e.to_string()))?;
    match index {
        Some(ie) => {
            let ie = elab_expr_to_ir(ie, locals)?;
            idx_to_expr_subst(&raw, &|v| (v == DYN_IDX).then(|| ie.clone()))
        }
        None => idx_to_expr(&raw),
    }
}

/// The rendered coordinate of an execution space along a dimension:
/// the backend's block/thread builtin, or the derived
/// `threadIdx.x / 32` / `threadIdx.x % 32` warp and lane coordinates —
/// built as the IR expression
/// [`descend_codegen::ir_gen::space_coord_expr`] produces and rendered
/// through [`render_ir_expr`], so the text matches the simulator's
/// split conditions node for node.
pub fn space_coord(be: &dyn KernelBackend, space: Space, dim: DimCompo, k: &MonoKernel) -> String {
    let expr = descend_codegen::ir_gen::space_coord_expr(space, dim);
    let mut out = String::new();
    render_ir_expr(be, &expr, k, &mut out);
    out
}

/// Maps a dimension component to a hardware axis.
pub fn dim_axis(d: DimCompo) -> Axis {
    match d {
        DimCompo::X => Axis::X,
        DimCompo::Y => Axis::Y,
        DimCompo::Z => Axis::Z,
    }
}

/// The lower-case component letter of an axis (`x`/`y`/`z`).
pub fn axis_name(a: Axis) -> &'static str {
    match a {
        Axis::X => "x",
        Axis::Y => "y",
        Axis::Z => "z",
    }
}

/// Whether a kernel touches the given scalar kind anywhere — parameters,
/// shared staging, or thread-private locals (used by backends that need
/// an extension pragma or a narrowing note for a kind).
pub fn kernel_uses_scalar(k: &MonoKernel, kind: ScalarKind) -> bool {
    let mut local_hit = false;
    for_each_stmt(&k.body, &mut |s| {
        if let ElabStmt::Local { elem, .. } = s {
            local_hit |= *elem == kind;
        }
    });
    k.params.iter().any(|p| p.elem == kind) || k.shared.iter().any(|s| s.elem == kind) || local_hit
}

fn ir_binop(op: gpu_sim::ir::BinOp) -> &'static str {
    use gpu_sim::ir::BinOp::*;
    match op {
        Add => "+",
        Sub => "-",
        Mul => "*",
        Div => "/",
        Mod => "%",
        Lt => "<",
        Le => "<=",
        Gt => ">",
        Ge => ">=",
        Eq => "==",
        Ne => "!=",
        And => "&&",
        Or => "||",
        // Unreachable from index lowering; rendered as calls for the
        // benefit of hand-built IR.
        Min => "min",
        Max => "max",
    }
}

/// Renders an IR expression with the backend's coordinate and buffer
/// spellings. Used for the index expressions, so every target's text
/// matches the simulated lowering exactly. Local slots render as `l<i>`
/// (hand-built IR); bodies with named locals go through
/// [`render_ir_expr_named`].
pub fn render_ir_expr(be: &dyn KernelBackend, e: &Expr, k: &MonoKernel, out: &mut String) {
    render_ir_expr_named(be, e, k, &[], out);
}

/// Like [`render_ir_expr`], but renders `Local(i)` with the kernel's
/// declared local names (slot-indexed, as mirrored by [`SlotMap`]); slots
/// beyond the table fall back to `l<i>`.
pub fn render_ir_expr_named(
    be: &dyn KernelBackend,
    e: &Expr,
    k: &MonoKernel,
    local_names: &[String],
    out: &mut String,
) {
    match e {
        Expr::LitI(v) => {
            let _ = write!(out, "{v}");
        }
        Expr::LitF(v) => {
            let _ = write!(out, "{v:?}");
        }
        Expr::LitB(v) => {
            let _ = write!(out, "{v}");
        }
        Expr::BlockIdx(a) => out.push_str(&be.builtin(Builtin::BlockIdx, *a)),
        Expr::ThreadIdx(a) => out.push_str(&be.builtin(Builtin::ThreadIdx, *a)),
        Expr::BlockDim(a) => out.push_str(&be.builtin(Builtin::BlockDim, *a)),
        Expr::GridDim(a) => out.push_str(&be.builtin(Builtin::GridDim, *a)),
        Expr::Local(i) => match local_names.get(*i) {
            Some(n) => out.push_str(n),
            None => {
                let _ = write!(out, "l{i}");
            }
        },
        Expr::LoadGlobal { buf, idx } => {
            let _ = write!(out, "{}[", k.params[*buf].name);
            render_ir_expr_named(be, idx, k, local_names, out);
            out.push(']');
        }
        Expr::LoadShared { buf, idx } => {
            let _ = write!(out, "{}[", k.shared[*buf].name);
            render_ir_expr_named(be, idx, k, local_names, out);
            out.push(']');
        }
        Expr::Bin(op @ (gpu_sim::ir::BinOp::Min | gpu_sim::ir::BinOp::Max), a, b) => {
            let _ = write!(out, "{}(", ir_binop(*op));
            render_ir_expr_named(be, a, k, local_names, out);
            out.push_str(", ");
            render_ir_expr_named(be, b, k, local_names, out);
            out.push(')');
        }
        Expr::Bin(op, a, b) => {
            out.push('(');
            render_ir_expr_named(be, a, k, local_names, out);
            let _ = write!(out, " {} ", ir_binop(*op));
            render_ir_expr_named(be, b, k, local_names, out);
            out.push(')');
        }
        Expr::Un(op, a) => {
            out.push_str(match op {
                gpu_sim::ir::UnOp::Neg => "-",
                gpu_sim::ir::UnOp::Not => "!",
            });
            out.push('(');
            render_ir_expr_named(be, a, k, local_names, out);
            out.push(')');
        }
    }
}

fn binop_str(op: AstBinOp) -> &'static str {
    match op {
        AstBinOp::Add => "+",
        AstBinOp::Sub => "-",
        AstBinOp::Mul => "*",
        AstBinOp::Div => "/",
        AstBinOp::Mod => "%",
        AstBinOp::Lt => "<",
        AstBinOp::Le => "<=",
        AstBinOp::Gt => ">",
        AstBinOp::Ge => ">=",
        AstBinOp::Eq => "==",
        AstBinOp::Ne => "!=",
        AstBinOp::And => "&&",
        AstBinOp::Or => "||",
    }
}

/// Renders elaborated kernel bodies through a backend's syntax hooks.
///
/// Statement structure (declaration-then-rename discipline, split
/// conditions, barrier placement) is fixed here; the backend only
/// chooses spellings. All accesses go through [`access_index_expr`].
pub struct BodyCx<'a> {
    be: &'a dyn KernelBackend,
    kernel: &'a MonoKernel,
    /// Rendered name per live local (uniquified on rebinding).
    local_names: HashMap<String, String>,
    decl_counter: usize,
    /// IR slot per live local, mirroring the IR lowering's assignment.
    slots: SlotMap,
    /// Rendered name per IR slot (for [`render_ir_expr_named`]).
    slot_names: Vec<String>,
    /// Buffers updated atomically anywhere in the kernel.
    atomic_bufs: HashSet<MemKind>,
    /// Counter for emitted scatter-index temporaries (`descend_idx_<n>`;
    /// text-only locals the IR does not have, so they stay out of the
    /// slot tables).
    scatter_counter: usize,
}

impl<'a> BodyCx<'a> {
    /// A fresh body context for one kernel.
    pub fn new(be: &'a dyn KernelBackend, kernel: &'a MonoKernel) -> BodyCx<'a> {
        BodyCx {
            be,
            kernel,
            local_names: HashMap::new(),
            decl_counter: 0,
            slots: SlotMap::new(),
            slot_names: Vec::new(),
            atomic_bufs: atomic_targets(kernel),
            scatter_counter: 0,
        }
    }

    fn expr(&self, e: &ElabExpr, out: &mut String) -> Result<(), CodegenError> {
        match e {
            ElabExpr::Lit(kind, v) => out.push_str(&self.be.literal(*kind, *v)),
            ElabExpr::Local(name) => {
                let n = self
                    .local_names
                    .get(name)
                    .ok_or_else(|| CodegenError::UnknownLocal(name.clone()))?;
                out.push_str(n);
            }
            ElabExpr::Load(a) => {
                let mut text = String::new();
                self.access(a, &mut text)?;
                if self.atomic_bufs.contains(&a.mem) {
                    text = self.be.atomic_buffer_load(a.elem, text);
                }
                out.push_str(&self.be.load_conversion(a.elem, text));
            }
            ElabExpr::Binary(op, x, y) => {
                out.push('(');
                self.expr(x, out)?;
                let _ = write!(out, " {} ", binop_str(*op));
                self.expr(y, out)?;
                out.push(')');
            }
            ElabExpr::Unary(op, x) => {
                out.push_str(match op {
                    AstUnOp::Neg => "-",
                    AstUnOp::Not => "!",
                });
                out.push('(');
                self.expr(x, out)?;
                out.push(')');
            }
            ElabExpr::Shfl { kind, value, delta } => {
                let mut v = String::new();
                self.expr(value, &mut v)?;
                out.push_str(&self.be.shuffle(*kind, &v, *delta));
            }
        }
        Ok(())
    }

    fn access(&self, a: &ElabAccess, out: &mut String) -> Result<(), CodegenError> {
        let name = match a.mem {
            MemKind::GlobalParam(i) => &self.kernel.params[i].name,
            MemKind::Shared(i) => &self.kernel.shared[i].name,
        };
        let idx = access_index_expr(a)?;
        let _ = write!(out, "{name}[");
        render_ir_expr(self.be, &idx, self.kernel, out);
        out.push(']');
        Ok(())
    }

    /// Renders a statement list at the given indentation level.
    ///
    /// # Errors
    ///
    /// Propagates lowering failures (see [`CodegenError`]).
    pub fn stmts(
        &mut self,
        body: &[ElabStmt],
        out: &mut String,
        level: usize,
    ) -> Result<(), CodegenError> {
        for s in body {
            match s {
                ElabStmt::Local { name, elem, init } => {
                    let rendered = if self.local_names.contains_key(name) {
                        self.decl_counter += 1;
                        format!("{name}_{}", self.decl_counter)
                    } else {
                        name.clone()
                    };
                    indent(out, level);
                    // Render the initializer against the *previous*
                    // binding before installing the new name, so a
                    // shadowing `let x = x + ...` reads the old `x` —
                    // matching the IR lowering, which binds the slot
                    // after lowering the init.
                    let mut init_text = String::new();
                    self.expr(init, &mut init_text)?;
                    self.local_names.insert(name.clone(), rendered.clone());
                    let slot = self.slots.declare(name);
                    debug_assert_eq!(slot, self.slot_names.len());
                    self.slot_names.push(rendered.clone());
                    out.push_str(&self.be.local_decl(*elem, &rendered, &init_text));
                    out.push('\n');
                }
                ElabStmt::AssignLocal { name, value } => {
                    indent(out, level);
                    let n = self
                        .local_names
                        .get(name)
                        .ok_or_else(|| CodegenError::UnknownLocal(name.clone()))?
                        .clone();
                    let _ = write!(out, "{n} = ");
                    self.expr(value, out)?;
                    out.push_str(";\n");
                }
                ElabStmt::Store { access, value } => {
                    indent(out, level);
                    let mut value_text = String::new();
                    self.expr(value, &mut value_text)?;
                    let value_text = self.be.store_conversion(access.elem, value_text);
                    if self.atomic_bufs.contains(&access.mem) {
                        let mut target = String::new();
                        self.access(access, &mut target)?;
                        out.push_str(&self.be.atomic_buffer_store(
                            access.elem,
                            &target,
                            &value_text,
                        ));
                    } else {
                        self.access(access, out)?;
                        out.push_str(" = ");
                        out.push_str(&value_text);
                        out.push(';');
                    }
                    out.push('\n');
                }
                ElabStmt::Split {
                    space,
                    dim,
                    threshold,
                    fst,
                    snd,
                } => {
                    indent(out, level);
                    let coord = space_coord(self.be, *space, *dim, self.kernel);
                    let _ = writeln!(out, "if ({coord} < {threshold}) {{");
                    self.stmts(fst, out, level + 1)?;
                    indent(out, level);
                    if snd.is_empty() {
                        out.push_str("}\n");
                    } else {
                        out.push_str("} else {\n");
                        self.stmts(snd, out, level + 1)?;
                        indent(out, level);
                        out.push_str("}\n");
                    }
                }
                ElabStmt::Atomic {
                    op,
                    access,
                    index,
                    value,
                } => {
                    indent(out, level);
                    let mut value_text = String::new();
                    self.expr(value, &mut value_text)?;
                    let name = match access.mem {
                        MemKind::GlobalParam(i) => &self.kernel.params[i].name,
                        MemKind::Shared(i) => &self.kernel.shared[i].name,
                    };
                    let global = matches!(access.mem, MemKind::GlobalParam(_));
                    match index {
                        None => {
                            // Static target: the full element index,
                            // node-for-node the simulator IR's, rendered
                            // with this backend's spellings and the
                            // declared local names.
                            let slots = &self.slots;
                            let idx = atomic_index_expr(access, None, &|n| slots.get(n))?;
                            let mut target = format!("{name}[");
                            render_ir_expr_named(
                                self.be,
                                &idx,
                                self.kernel,
                                &self.slot_names,
                                &mut target,
                            );
                            target.push(']');
                            out.push_str(&self.be.atomic_rmw(
                                *op,
                                access.elem,
                                global,
                                &target,
                                &value_text,
                            ));
                        }
                        Some(ie) => {
                            // Scatter target: the runtime index is a value
                            // the type system cannot bound, so (a) bind it
                            // ONCE to an emitted local — evaluating it a
                            // single time and routing any loads through
                            // the backend's atomic-buffer conversions —
                            // and (b) guard the access. The simulator
                            // reports an out-of-bounds index as an error
                            // during testing; the emitted code skips it so
                            // the hardware never writes out of bounds (the
                            // same line works in CUDA C++, OpenCL C and
                            // WGSL).
                            let mut idx_init = String::new();
                            self.expr(ie, &mut idx_init)?;
                            let tmp = format!("descend_idx_{}", self.scatter_counter);
                            self.scatter_counter += 1;
                            let init = self.be.cast(ScalarKind::I32, &idx_init);
                            out.push_str(&self.be.local_decl(ScalarKind::I32, &tmp, &init));
                            out.push('\n');
                            indent(out, level);
                            let raw = lower_scalar_access(&access.path, &access.root_dims)
                                .map_err(|e| CodegenError::Lowering(e.to_string()))?;
                            let mut names = self.slot_names.clone();
                            let tmp_slot = names.len();
                            names.push(self.be.scatter_index_use(&tmp));
                            let idx = idx_to_expr_subst(&raw, &|v| {
                                (v == DYN_IDX).then_some(Expr::Local(tmp_slot))
                            })?;
                            let mut idx_text = String::new();
                            render_ir_expr_named(self.be, &idx, self.kernel, &names, &mut idx_text);
                            let target = format!("{name}[{idx_text}]");
                            let call =
                                self.be
                                    .atomic_rmw(*op, access.elem, global, &target, &value_text);
                            let mut total = 1u64;
                            for d in &access.root_dims {
                                total *= d.as_lit().ok_or_else(|| {
                                    CodegenError::Lowering(format!(
                                        "non-literal root dimension `{d}` in atomic scatter bound"
                                    ))
                                })?;
                            }
                            let _ = write!(
                                out,
                                "if (0 <= {idx_text} && {idx_text} < {total}) {{ {call} }}"
                            );
                        }
                    }
                    out.push('\n');
                }
                ElabStmt::Sync => {
                    indent(out, level);
                    out.push_str(self.be.barrier());
                    out.push('\n');
                }
                // Source markers carry trace attribution only; emitted
                // text stays byte-identical with or without them.
                ElabStmt::Src(_) => {}
            }
        }
        Ok(())
    }
}

/// Per-variable element kind and length across a host function's
/// statements — the single home for the bookkeeping every host-stub
/// emitter needs (allocation sizes propagate through `gpu_alloc_copy`).
#[derive(Default)]
pub struct HostSizes {
    sizes: HashMap<String, (ScalarKind, u64)>,
}

impl HostSizes {
    /// A fresh, empty tracker.
    pub fn new() -> HostSizes {
        HostSizes::default()
    }

    /// Records the allocation a statement introduces, if any. Call once
    /// per statement, in order, before rendering it.
    pub fn record(&mut self, s: &HostStmt) {
        match s {
            HostStmt::AllocCpu { name, elem, len } | HostStmt::AllocGpu { name, elem, len } => {
                self.sizes.insert(name.clone(), (*elem, *len));
            }
            HostStmt::AllocGpuCopy { name, src, elem } => {
                let (_, len) = self.get(src);
                self.sizes.insert(name.clone(), (*elem, len));
            }
            HostStmt::CopyToHost { .. } | HostStmt::CopyToGpu { .. } | HostStmt::Launch { .. } => {}
        }
    }

    /// Element kind and length of a variable (`(F64, 0)` when unknown,
    /// matching the historical emitters' fallback).
    pub fn get(&self, name: &str) -> (ScalarKind, u64) {
        self.sizes
            .get(name)
            .copied()
            .unwrap_or((ScalarKind::F64, 0))
    }
}

/// Collects the lowered index expression of every memory access in an
/// elaborated kernel body (loads and stores, in syntactic order).
///
/// This is what the emitters print; comparing it against
/// [`ir_index_exprs`] of the lowered [`KernelIr`] proves text and
/// simulation share one lowering.
///
/// # Errors
///
/// Propagates lowering failures (see [`CodegenError`]).
pub fn kernel_index_exprs(k: &MonoKernel) -> Result<Vec<Expr>, CodegenError> {
    collect_index_exprs(k, false)
}

/// The index expressions that appear *inline* (bracketed) in every
/// backend's emitted text: all plain accesses plus static-form atomic
/// targets. Scatter atomics are excluded — their runtime index is bound
/// to an emitted temporary first (one evaluation, guarded), so the full
/// address never appears inline; the dedicated atomic consistency test
/// pins that form instead. The loads *inside* a scatter index do appear
/// inline (in the temporary's initializer) and are included.
///
/// # Errors
///
/// Propagates lowering failures (see [`CodegenError`]).
pub fn kernel_inline_index_exprs(k: &MonoKernel) -> Result<Vec<Expr>, CodegenError> {
    collect_index_exprs(k, true)
}

/// The one Elab-side index walk behind [`kernel_index_exprs`] and
/// [`kernel_inline_index_exprs`]; the two differ only in how a scatter
/// atomic's target contributes (full spliced address vs. nothing beyond
/// its inline parts).
fn collect_index_exprs(k: &MonoKernel, inline_only: bool) -> Result<Vec<Expr>, CodegenError> {
    fn walk_expr(e: &ElabExpr, out: &mut Vec<Expr>) -> Result<(), CodegenError> {
        match e {
            ElabExpr::Lit(..) | ElabExpr::Local(_) => {}
            ElabExpr::Load(a) => out.push(access_index_expr(a)?),
            ElabExpr::Binary(_, x, y) => {
                walk_expr(x, out)?;
                walk_expr(y, out)?;
            }
            ElabExpr::Unary(_, x) | ElabExpr::Shfl { value: x, .. } => walk_expr(x, out)?,
        }
        Ok(())
    }
    fn walk_stmts(
        body: &[ElabStmt],
        inline_only: bool,
        slots: &mut SlotMap,
        out: &mut Vec<Expr>,
    ) -> Result<(), CodegenError> {
        for s in body {
            match s {
                ElabStmt::Local { name, init, .. } => {
                    walk_expr(init, out)?;
                    slots.declare(name);
                }
                ElabStmt::AssignLocal { value, .. } => walk_expr(value, out)?,
                ElabStmt::Store { access, value } => {
                    out.push(access_index_expr(access)?);
                    walk_expr(value, out)?;
                }
                ElabStmt::Atomic {
                    access,
                    index,
                    value,
                    ..
                } => {
                    if !inline_only {
                        // The atomic target contributes its *full* index
                        // — static part and spliced runtime part —
                        // exactly as the IR carries it.
                        out.push(atomic_index_expr(access, index.as_ref(), &|n| {
                            slots.get(n)
                        })?);
                    } else if index.is_none() {
                        out.push(access_index_expr(access)?);
                    }
                    if let Some(ie) = index {
                        walk_expr(ie, out)?;
                    }
                    walk_expr(value, out)?;
                }
                ElabStmt::Split { fst, snd, .. } => {
                    walk_stmts(fst, inline_only, slots, out)?;
                    walk_stmts(snd, inline_only, slots, out)?;
                }
                ElabStmt::Sync | ElabStmt::Src(_) => {}
            }
        }
        Ok(())
    }
    let mut out = Vec::new();
    walk_stmts(&k.body, inline_only, &mut SlotMap::new(), &mut out)?;
    Ok(out)
}

/// Collects the index expression of every memory access in a simulator
/// kernel (loads and stores).
///
/// Symmetric with [`kernel_index_exprs`]: each access contributes its
/// index *as a unit*, without recursing into it — so the two collections
/// compare as multisets even if a future lowering ever nests an access
/// inside an index.
pub fn ir_index_exprs(ir: &KernelIr) -> Vec<Expr> {
    fn walk_expr(e: &Expr, out: &mut Vec<Expr>) {
        match e {
            Expr::LoadGlobal { idx, .. } | Expr::LoadShared { idx, .. } => {
                out.push((**idx).clone());
            }
            Expr::Bin(_, a, b) => {
                walk_expr(a, out);
                walk_expr(b, out);
            }
            Expr::Un(_, a) => walk_expr(a, out),
            _ => {}
        }
    }
    fn walk_stmts(body: &[Stmt], out: &mut Vec<Expr>) {
        for s in body {
            match s {
                Stmt::SetLocal(_, e) | Stmt::Shfl { value: e, .. } => walk_expr(e, out),
                Stmt::StoreGlobal { idx, value, .. } | Stmt::StoreShared { idx, value, .. } => {
                    out.push(idx.clone());
                    walk_expr(value, out);
                }
                Stmt::AtomicGlobal { idx, value, .. } | Stmt::AtomicShared { idx, value, .. } => {
                    out.push(idx.clone());
                    // A scatter index may itself contain loads (the
                    // histogram reads its bin from memory); collect their
                    // indices too, mirroring the Elab-side walk of the
                    // dynamic index expression.
                    walk_expr(idx, out);
                    walk_expr(value, out);
                }
                Stmt::If {
                    cond,
                    then_s,
                    else_s,
                } => {
                    walk_expr(cond, out);
                    walk_stmts(then_s, out);
                    walk_stmts(else_s, out);
                }
                Stmt::Loop {
                    init, bound, body, ..
                } => {
                    walk_expr(init, out);
                    walk_expr(bound, out);
                    walk_stmts(body, out);
                }
                Stmt::Barrier | Stmt::Src(_) => {}
            }
        }
    }
    let mut out = Vec::new();
    walk_stmts(&ir.body, &mut out);
    out
}
