//! The portable C11 (+OpenMP) backend — the one target this repository
//! can *execute*.
//!
//! The other backends render for hardware we do not have; this one
//! renders for the host CPU so the differential harness
//! (`descend-native`, `tests/native_diff.rs`) can compile emitted code
//! with the system `cc` and compare real runs against the simulator and
//! sequential references.
//!
//! # Execution model
//!
//! - **Blocks** become iterations of an outer
//!   `#pragma omp parallel for` loop: blocks are independent except for
//!   global atomics, which render as `#pragma omp atomic` /
//!   `__atomic_compare_exchange_n` CAS loops.
//! - **Threads** become iterations of inner sequential loops, one loop
//!   per *barrier phase*: the kernel body is fissioned at every `sync`
//!   (and at every shuffle staging point), and each phase runs all
//!   threads of the block to completion before the next phase starts.
//!   Running a whole phase for thread 0, then thread 1, ... is exactly
//!   the barrier guarantee, and the checker has already proven each
//!   interval race-free, so the serialization cannot change results.
//! - **Warp shuffles** stage through a per-block scratch array indexed
//!   by the linear thread id: the shuffle operand is written to
//!   `__shfl<n>[__t]`, the phase is broken (all lanes stage before any
//!   lane reads — the checker guarantees warp-uniform control flow
//!   around shuffles), and the continuation reads the partner lane's
//!   slot (`__t ^ delta`, or `__t + delta` clamped at the warp edge
//!   with the lane's own value, matching CUDA/simulator semantics).
//! - **Thread-private locals** become per-block arrays indexed by the
//!   linear thread id, because a local written in one phase may be read
//!   in a later one (the warp-shuffle reduction does exactly this).
//!   They are declared with the *compute* type — `double` for both
//!   float widths, `int64_t` for both integer widths — mirroring the
//!   simulator, which computes in f64/i64 and narrows only at buffer
//!   stores; see `docs/DESIGN.md` for the divergences this does and
//!   does not close.
//!
//! Host functions render as real runnable C: `calloc`/`memcpy` for the
//! alloc/copy statements, plain calls for launches, plus a tiny stdin/
//! stdout protocol (`descend_load_inputs` / `descend_buf_dump`) so the
//! harness can feed the same inputs the simulator sees and read back
//! every CPU buffer. A generated `main` dispatches on `argv[1]`.

use crate::shared::{
    access_index_expr, atomic_index_expr, atomic_targets, axis_name, for_each_stmt, indent,
    render_ir_expr, render_ir_expr_named, space_coord, Builtin, HostSizes, SlotMap,
};
use crate::KernelBackend;
use descend_ast::term::{AtomicOp, BinOp as AstBinOp, ShflKind, UnOp as AstUnOp};
use descend_codegen::ir_gen::idx_to_expr_subst;
use descend_codegen::CodegenError;
use descend_places::{lower_scalar_access, DYN_IDX};
use descend_typeck::{
    CheckedProgram, ElabAccess, ElabExpr, ElabStmt, HostStmt, MemKind, MonoKernel, ScalarKind,
};
use gpu_sim::ir::{Axis, Expr};
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;

/// The portable C11 (+OpenMP) target.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CBackend;

/// The arithmetic type a scalar kind is *computed* in, mirroring the
/// simulator's value representation (f64 for both float widths, i64 for
/// both integer widths; narrowing happens only at buffer stores).
fn compute_type(k: ScalarKind) -> &'static str {
    match k {
        ScalarKind::F64 | ScalarKind::F32 => "double",
        ScalarKind::I32 | ScalarKind::U32 => "int64_t",
        ScalarKind::Bool => "bool",
    }
}

impl KernelBackend for CBackend {
    fn name(&self) -> &'static str {
        "c"
    }

    fn file_extension(&self) -> &'static str {
        "c"
    }

    fn scalar_type(&self, k: ScalarKind) -> &'static str {
        // Buffer element spellings: exact fixed-width types so the
        // native run's memory layout matches the simulator's model.
        match k {
            ScalarKind::F64 => "double",
            ScalarKind::F32 => "float",
            ScalarKind::I32 => "int32_t",
            ScalarKind::U32 => "uint32_t",
            ScalarKind::Bool => "bool",
        }
    }

    fn builtin(&self, b: Builtin, axis: Axis) -> String {
        let base = match b {
            Builtin::BlockIdx => "blockIdx",
            Builtin::ThreadIdx => "threadIdx",
            Builtin::BlockDim => "blockDim",
            Builtin::GridDim => "gridDim",
        };
        // Plain `int64_t` locals derived from the loop counters; the
        // kernel frame declares exactly the ones the body references.
        format!("{base}_{}", axis_name(axis))
    }

    fn barrier(&self) -> &'static str {
        // Never emitted: `sync` is compiled away into phase fission (a
        // new thread loop), which *is* the barrier.
        "/* barrier: phase boundary */"
    }

    fn literal(&self, kind: ScalarKind, v: f64) -> String {
        match kind {
            // f32 literals are spelled as doubles on purpose: the
            // simulator computes f32 in f64 and rounds only at buffer
            // stores, and the C rendering does the same.
            ScalarKind::F64 | ScalarKind::F32 => format!("{v:?}"),
            ScalarKind::I32 | ScalarKind::U32 => format!("{}", v as i64),
            ScalarKind::Bool => format!("{}", v != 0.0),
        }
    }

    fn local_decl(&self, elem: ScalarKind, name: &str, init: &str) -> String {
        format!("{} {name} = {init};", compute_type(elem))
    }

    fn load_conversion(&self, elem: ScalarKind, text: String) -> String {
        match elem {
            // Promote f32 loads so whole expressions evaluate in
            // double, like the simulator (a float intermediate would
            // double-round chained arithmetic).
            ScalarKind::F32 => format!("(double)({text})"),
            // Promote u32 loads to a signed 64-bit value: the simulator
            // computes unsigned buffers in i64, so comparisons and
            // subtraction with negative intermediates must not wrap to
            // huge unsigned values. i32 loads are left alone — C's
            // `int` covers the full i32 range, and index parity with
            // the other backends pins the unwrapped spelling.
            ScalarKind::U32 => format!("(int64_t)({text})"),
            ScalarKind::F64 | ScalarKind::I32 | ScalarKind::Bool => text,
        }
    }

    fn store_conversion(&self, elem: ScalarKind, text: String) -> String {
        match elem {
            // Narrow at the buffer boundary, exactly where the
            // simulator quantizes.
            ScalarKind::F32 => format!("(float)({text})"),
            ScalarKind::I32 => format!("(int32_t)({text})"),
            ScalarKind::U32 => format!("(uint32_t)({text})"),
            ScalarKind::F64 | ScalarKind::Bool => text,
        }
    }

    fn atomic_rmw(
        &self,
        op: AtomicOp,
        elem: ScalarKind,
        global: bool,
        target: &str,
        value: &str,
    ) -> String {
        if !global {
            // Shared memory is per-block and each block runs its
            // threads sequentially, so shared atomics need no
            // synchronization at all — plain read-modify-write.
            return match op {
                AtomicOp::Add => format!("{target} += {value};"),
                AtomicOp::Exch => format!("{target} = {value};"),
                AtomicOp::Min => format!("if ({value} < {target}) {{ {target} = {value}; }}"),
                AtomicOp::Max => format!("if ({value} > {target}) {{ {target} = {value}; }}"),
            };
        }
        // Global targets are contended across OpenMP block iterations.
        match op {
            AtomicOp::Add => format!("#pragma omp atomic update\n{target} += {value};"),
            AtomicOp::Exch => format!("#pragma omp atomic write\n{target} = {value};"),
            AtomicOp::Min | AtomicOp::Max => {
                // No OpenMP atomic min/max statement form in C11-era
                // OpenMP; use the CAS helpers from the prelude. The
                // checker restricts min/max to integer places.
                let f = match (op, elem) {
                    (AtomicOp::Min, ScalarKind::U32) => "descend_atomic_min_u32",
                    (AtomicOp::Max, ScalarKind::U32) => "descend_atomic_max_u32",
                    (AtomicOp::Min, _) => "descend_atomic_min_i32",
                    (AtomicOp::Max, _) => "descend_atomic_max_i32",
                    _ => unreachable!("add/exch handled above"),
                };
                format!("{f}(&{target}, {value});")
            }
        }
    }

    fn shuffle(&self, kind: ShflKind, value: &str, delta: u32) -> String {
        // `value` is the *staging array name* (see the module docs):
        // the operand was written to `value[__t]` in the previous
        // phase, and this expression reads the partner lane's slot.
        // Warps are groups of 32 consecutive linear thread ids, exactly
        // the simulator's warp grouping.
        match kind {
            ShflKind::Xor => format!("{value}[(__t ^ {delta})]"),
            // A Down source past the warp edge yields the lane's own
            // value (CUDA/simulator semantics).
            ShflKind::Down => {
                format!("((((__t % 32) + {delta}) < 32) ? {value}[(__t + {delta})] : {value}[__t])")
            }
        }
    }

    fn emit_kernel(&self, k: &MonoKernel) -> Result<String, CodegenError> {
        let mut cx = CKernelCx::new(self, k);
        cx.stmts(&k.body)?;
        cx.render(k)
    }

    fn emit_host_fn(
        &self,
        name: &str,
        stmts: &[HostStmt],
        kernels: &[MonoKernel],
    ) -> Result<String, CodegenError> {
        let mut out = String::new();
        let _ = writeln!(out, "void descend_host_{name}(void) {{");
        let mut sizes = HostSizes::new();
        // CPU buffers dump (in allocation order) after the body runs;
        // every allocation is freed on the way out.
        let mut cpu_bufs: Vec<(String, ScalarKind, u64)> = Vec::new();
        let mut frees: Vec<String> = Vec::new();
        for s in stmts {
            sizes.record(s);
            indent(&mut out, 1);
            match s {
                HostStmt::AllocCpu { name, elem, len } => {
                    let t = self.scalar_type(*elem);
                    let _ = writeln!(out, "{t}* {name} = ({t}*)calloc({len}, sizeof({t}));");
                    indent(&mut out, 1);
                    let _ = writeln!(
                        out,
                        "descend_buf_init(\"{name}\", {name}, {len}, {});",
                        elem_enum(*elem)
                    );
                    cpu_bufs.push((name.clone(), *elem, *len));
                    frees.push(name.clone());
                }
                HostStmt::AllocGpu { name, elem, len } => {
                    let t = self.scalar_type(*elem);
                    let _ = writeln!(out, "{t}* {name} = ({t}*)calloc({len}, sizeof({t}));");
                    frees.push(name.clone());
                }
                HostStmt::AllocGpuCopy { name, src, elem } => {
                    let (_, len) = sizes.get(src);
                    let t = self.scalar_type(*elem);
                    let _ = writeln!(
                        out,
                        "{t}* {name} = ({t}*)malloc({len} * sizeof({t})); memcpy({name}, {src}, {len} * sizeof({t}));"
                    );
                    frees.push(name.clone());
                }
                HostStmt::CopyToHost { dst, src } | HostStmt::CopyToGpu { dst, src } => {
                    let (elem, len) = sizes.get(dst);
                    let t = self.scalar_type(elem);
                    let _ = writeln!(out, "memcpy({dst}, {src}, {len} * sizeof({t}));");
                }
                HostStmt::Launch { kernel, args } => {
                    let _ = writeln!(out, "{}({});", kernels[*kernel].name, args.join(", "));
                }
            }
        }
        for (name, elem, len) in &cpu_bufs {
            indent(&mut out, 1);
            let _ = writeln!(
                out,
                "descend_buf_dump(\"{name}\", {name}, {len}, {});",
                elem_enum(*elem)
            );
        }
        for name in &frees {
            indent(&mut out, 1);
            let _ = writeln!(out, "free({name});");
        }
        out.push_str("}\n");
        Ok(out)
    }

    fn prelude(&self, checked: &CheckedProgram) -> String {
        let mut out = String::from("#include <stdint.h>\n#include <stdbool.h>\n");
        let has_host = !checked.host_fns.is_empty();
        if has_host {
            out.push_str("#include <stdio.h>\n#include <stdlib.h>\n#include <string.h>\n");
        }
        out.push('\n');
        if needs_cas_helpers(checked) {
            out.push_str(CAS_HELPERS);
        }
        if has_host {
            out.push_str(HOST_RUNTIME);
        }
        out
    }

    fn emit_program(&self, checked: &CheckedProgram) -> Result<String, CodegenError> {
        let mut out = self.prelude(checked);
        for k in &checked.kernels {
            out.push_str(&self.emit_kernel(k)?);
            out.push('\n');
        }
        for (name, stmts) in &checked.host_fns {
            out.push_str(&self.emit_host_fn(name, stmts, &checked.kernels)?);
            out.push('\n');
        }
        if !checked.host_fns.is_empty() {
            out.push_str(&dispatcher(checked));
        }
        Ok(out)
    }
}

/// The `descend_elem` enum spelling for a scalar kind.
fn elem_enum(k: ScalarKind) -> &'static str {
    match k {
        ScalarKind::F64 => "DESCEND_F64",
        ScalarKind::F32 => "DESCEND_F32",
        ScalarKind::I32 => "DESCEND_I32",
        ScalarKind::U32 => "DESCEND_U32",
        ScalarKind::Bool => "DESCEND_BOOL",
    }
}

/// Whether any kernel performs a global atomic min/max (the only
/// operations that need the CAS helpers).
fn needs_cas_helpers(checked: &CheckedProgram) -> bool {
    let mut hit = false;
    for k in &checked.kernels {
        for_each_stmt(&k.body, &mut |s| {
            if let ElabStmt::Atomic { op, access, .. } = s {
                hit |= matches!(op, AtomicOp::Min | AtomicOp::Max)
                    && matches!(access.mem, MemKind::GlobalParam(_));
            }
        });
    }
    hit
}

/// CAS loops for global integer atomic min/max (no OpenMP statement
/// form exists for them). `static inline` so unused helpers do not trip
/// `-Wall -Werror`.
const CAS_HELPERS: &str = "\
static inline void descend_atomic_min_i32(int32_t* p, int32_t v) {
    int32_t old = __atomic_load_n(p, __ATOMIC_RELAXED);
    while (v < old
           && !__atomic_compare_exchange_n(p, &old, v, 0, __ATOMIC_RELAXED, __ATOMIC_RELAXED)) {
    }
}

static inline void descend_atomic_max_i32(int32_t* p, int32_t v) {
    int32_t old = __atomic_load_n(p, __ATOMIC_RELAXED);
    while (v > old
           && !__atomic_compare_exchange_n(p, &old, v, 0, __ATOMIC_RELAXED, __ATOMIC_RELAXED)) {
    }
}

static inline void descend_atomic_min_u32(uint32_t* p, uint32_t v) {
    uint32_t old = __atomic_load_n(p, __ATOMIC_RELAXED);
    while (v < old
           && !__atomic_compare_exchange_n(p, &old, v, 0, __ATOMIC_RELAXED, __ATOMIC_RELAXED)) {
    }
}

static inline void descend_atomic_max_u32(uint32_t* p, uint32_t v) {
    uint32_t old = __atomic_load_n(p, __ATOMIC_RELAXED);
    while (v > old
           && !__atomic_compare_exchange_n(p, &old, v, 0, __ATOMIC_RELAXED, __ATOMIC_RELAXED)) {
    }
}

";

/// The stdin/stdout harness runtime: `name count v0 v1 ...` records on
/// stdin seed CPU buffers (with the simulator's exact quantization);
/// every CPU buffer's final contents print one `name count v0 ...` line
/// on stdout. `%.17g` round-trips every double exactly.
const HOST_RUNTIME: &str = "\
typedef enum {
    DESCEND_F64,
    DESCEND_F32,
    DESCEND_I32,
    DESCEND_U32,
    DESCEND_BOOL
} descend_elem;

#define DESCEND_MAX_INPUTS 64
static struct {
    char name[64];
    long long len;
    double* vals;
} descend_inputs[DESCEND_MAX_INPUTS];
static int descend_input_count = 0;

static inline void descend_load_inputs(void) {
    char name[64];
    long long len;
    while (descend_input_count < DESCEND_MAX_INPUTS && scanf(\"%63s %lld\", name, &len) == 2) {
        double* vals = (double*)calloc(len > 0 ? (size_t)len : 1, sizeof(double));
        for (long long i = 0; i < len; i++) {
            if (scanf(\"%lf\", &vals[i]) != 1) {
                break;
            }
        }
        strcpy(descend_inputs[descend_input_count].name, name);
        descend_inputs[descend_input_count].len = len;
        descend_inputs[descend_input_count].vals = vals;
        descend_input_count++;
    }
}

static inline int32_t descend_quant_i32(double v) {
    if (v != v) {
        return 0;
    }
    if (v >= 2147483647.0) {
        return INT32_MAX;
    }
    if (v <= -2147483648.0) {
        return INT32_MIN;
    }
    return (int32_t)v;
}

static inline uint32_t descend_quant_u32(double v) {
    if (v != v || v <= 0.0) {
        return 0;
    }
    if (v >= 4294967295.0) {
        return UINT32_MAX;
    }
    return (uint32_t)v;
}

static inline void descend_buf_init(const char* name, void* buf, long long len, descend_elem k) {
    for (int i = 0; i < descend_input_count; i++) {
        if (strcmp(descend_inputs[i].name, name) != 0) {
            continue;
        }
        long long n = descend_inputs[i].len < len ? descend_inputs[i].len : len;
        for (long long j = 0; j < n; j++) {
            double v = descend_inputs[i].vals[j];
            switch (k) {
            case DESCEND_F64:
                ((double*)buf)[j] = v;
                break;
            case DESCEND_F32:
                ((float*)buf)[j] = (float)v;
                break;
            case DESCEND_I32:
                ((int32_t*)buf)[j] = descend_quant_i32(v);
                break;
            case DESCEND_U32:
                ((uint32_t*)buf)[j] = descend_quant_u32(v);
                break;
            case DESCEND_BOOL:
                ((bool*)buf)[j] = v != 0.0;
                break;
            }
        }
        return;
    }
}

static inline void descend_buf_dump(const char* name, const void* buf, long long len,
                                    descend_elem k) {
    printf(\"%s %lld\", name, len);
    for (long long j = 0; j < len; j++) {
        switch (k) {
        case DESCEND_F64:
            printf(\" %.17g\", ((const double*)buf)[j]);
            break;
        case DESCEND_F32:
            printf(\" %.17g\", (double)((const float*)buf)[j]);
            break;
        case DESCEND_I32:
            printf(\" %lld\", (long long)((const int32_t*)buf)[j]);
            break;
        case DESCEND_U32:
            printf(\" %llu\", (unsigned long long)((const uint32_t*)buf)[j]);
            break;
        case DESCEND_BOOL:
            printf(\" %d\", ((const bool*)buf)[j] ? 1 : 0);
            break;
        }
    }
    printf(\"\\n\");
}

";

/// The generated `main`: loads stdin inputs once, then dispatches
/// `argv[1]` (default `main` if the program has one, else the first
/// host function) to its `descend_host_*` stub.
fn dispatcher(checked: &CheckedProgram) -> String {
    let default = if checked.host_fns.iter().any(|(n, _)| n == "main") {
        "main"
    } else {
        &checked.host_fns[0].0
    };
    let mut out = String::new();
    let _ = writeln!(out, "int main(int argc, char** argv) {{");
    let _ = writeln!(
        out,
        "    const char* fn = argc > 1 ? argv[1] : \"{default}\";"
    );
    let _ = writeln!(out, "    descend_load_inputs();");
    for (name, _) in &checked.host_fns {
        let _ = writeln!(out, "    if (strcmp(fn, \"{name}\") == 0) {{");
        let _ = writeln!(out, "        descend_host_{name}();");
        let _ = writeln!(out, "        return 0;");
        let _ = writeln!(out, "    }}");
    }
    let _ = writeln!(
        out,
        "    fprintf(stderr, \"unknown host function %s\\n\", fn);"
    );
    let _ = writeln!(out, "    return 1;");
    let _ = writeln!(out, "}}");
    out
}

/// One barrier interval: everything between two phase breaks, rendered
/// as one sequential all-threads loop.
#[derive(Default)]
struct Phase {
    chunks: Vec<Chunk>,
}

/// A maximal run of consecutive statements under one split-condition
/// stack within a phase.
struct Chunk {
    conds: Vec<String>,
    stmts: Vec<String>,
}

/// The C kernel walker. Unlike [`crate::shared::BodyCx`] (which renders
/// nested `if`/barrier statements in place), this walker *fissions* the
/// body into phases at `sync` and shuffle-staging points, then renders
/// each phase as its own thread loop — the local-name and IR-slot
/// discipline is kept statement-for-statement identical to `BodyCx` so
/// the C text stays node-identical to the simulator IR.
struct CKernelCx<'a> {
    be: &'a CBackend,
    kernel: &'a MonoKernel,
    /// Rendered array name per live local (uniquified on rebinding).
    local_names: HashMap<String, String>,
    /// Declared element kind per live local (for shuffle staging).
    local_elems: HashMap<String, ScalarKind>,
    decl_counter: usize,
    /// IR slot per live local, mirroring the IR lowering's assignment.
    slots: SlotMap,
    /// Rendered *use* text per IR slot (`name[__t]`).
    slot_names: Vec<String>,
    atomic_bufs: HashSet<MemKind>,
    scatter_counter: usize,
    /// Hoisted per-thread local arrays, in declaration order.
    decls: Vec<(String, ScalarKind)>,
    /// Shuffle staging arrays, in staging order.
    shfl_decls: Vec<(String, ScalarKind)>,
    /// The active split-condition stack.
    conds: Vec<String>,
    phases: Vec<Phase>,
}

impl<'a> CKernelCx<'a> {
    fn new(be: &'a CBackend, kernel: &'a MonoKernel) -> CKernelCx<'a> {
        CKernelCx {
            be,
            kernel,
            local_names: HashMap::new(),
            local_elems: HashMap::new(),
            decl_counter: 0,
            slots: SlotMap::new(),
            slot_names: Vec::new(),
            atomic_bufs: atomic_targets(kernel),
            scatter_counter: 0,
            decls: Vec::new(),
            shfl_decls: Vec::new(),
            conds: Vec::new(),
            phases: vec![Phase::default()],
        }
    }

    /// Appends one (possibly multi-line) statement to the current
    /// phase, merging into the last chunk when the condition stack is
    /// unchanged.
    fn emit_line(&mut self, text: String) {
        let phase = self.phases.last_mut().expect("always one open phase");
        match phase.chunks.last_mut() {
            Some(c) if c.conds == self.conds => c.stmts.push(text),
            _ => phase.chunks.push(Chunk {
                conds: self.conds.clone(),
                stmts: vec![text],
            }),
        }
    }

    /// Ends the current barrier interval: subsequent statements land in
    /// a fresh thread loop.
    fn break_phase(&mut self) {
        self.phases.push(Phase::default());
    }

    fn expr(&mut self, e: &ElabExpr, out: &mut String) -> Result<(), CodegenError> {
        match e {
            ElabExpr::Lit(kind, v) => out.push_str(&self.be.literal(*kind, *v)),
            ElabExpr::Local(name) => {
                let n = self
                    .local_names
                    .get(name)
                    .ok_or_else(|| CodegenError::UnknownLocal(name.clone()))?;
                let _ = write!(out, "{n}[__t]");
            }
            ElabExpr::Load(a) => {
                let mut text = String::new();
                self.access(a, &mut text)?;
                if self.atomic_bufs.contains(&a.mem) {
                    text = self.be.atomic_buffer_load(a.elem, text);
                }
                out.push_str(&self.be.load_conversion(a.elem, text));
            }
            ElabExpr::Binary(op, x, y) => {
                out.push('(');
                self.expr(x, out)?;
                let _ = write!(out, " {} ", ast_binop(*op));
                self.expr(y, out)?;
                out.push(')');
            }
            ElabExpr::Unary(op, x) => {
                out.push_str(match op {
                    AstUnOp::Neg => "-",
                    AstUnOp::Not => "!",
                });
                out.push('(');
                self.expr(x, out)?;
                out.push(')');
            }
            ElabExpr::Shfl { kind, value, delta } => {
                // Stage the operand for every lane, end the phase (the
                // staging write must be visible to partner lanes before
                // any lane reads), and continue with the partner-slot
                // read in the next phase.
                let mut v = String::new();
                self.expr(value, &mut v)?;
                let elem = self.expr_kind(value);
                let arr = format!("__shfl{}", self.shfl_decls.len());
                self.shfl_decls.push((arr.clone(), elem));
                self.emit_line(format!("{arr}[__t] = {v};"));
                self.break_phase();
                out.push_str(&self.be.shuffle(*kind, &arr, *delta));
            }
        }
        Ok(())
    }

    /// The scalar kind an elaborated expression evaluates to (for
    /// shuffle staging array types).
    fn expr_kind(&self, e: &ElabExpr) -> ScalarKind {
        match e {
            ElabExpr::Lit(k, _) => *k,
            ElabExpr::Local(name) => self
                .local_elems
                .get(name)
                .copied()
                .unwrap_or(ScalarKind::F64),
            ElabExpr::Load(a) => a.elem,
            ElabExpr::Binary(op, a, _) => match op {
                AstBinOp::Lt
                | AstBinOp::Le
                | AstBinOp::Gt
                | AstBinOp::Ge
                | AstBinOp::Eq
                | AstBinOp::Ne
                | AstBinOp::And
                | AstBinOp::Or => ScalarKind::Bool,
                _ => self.expr_kind(a),
            },
            ElabExpr::Unary(AstUnOp::Not, _) => ScalarKind::Bool,
            ElabExpr::Unary(AstUnOp::Neg, a) => self.expr_kind(a),
            ElabExpr::Shfl { value, .. } => self.expr_kind(value),
        }
    }

    fn access(&self, a: &ElabAccess, out: &mut String) -> Result<(), CodegenError> {
        let name = match a.mem {
            MemKind::GlobalParam(i) => &self.kernel.params[i].name,
            MemKind::Shared(i) => &self.kernel.shared[i].name,
        };
        let idx = access_index_expr(a)?;
        let _ = write!(out, "{name}[");
        render_ir_expr(self.be, &idx, self.kernel, out);
        out.push(']');
        Ok(())
    }

    fn stmts(&mut self, body: &[ElabStmt]) -> Result<(), CodegenError> {
        for s in body {
            match s {
                ElabStmt::Local { name, elem, init } => {
                    // Initializer first, against the *previous* binding
                    // (shadowing `let x = x + ...` reads the old `x`),
                    // exactly like `BodyCx` and the IR lowering.
                    let mut init_text = String::new();
                    self.expr(init, &mut init_text)?;
                    let rendered = if self.local_names.contains_key(name) {
                        self.decl_counter += 1;
                        format!("{name}_{}", self.decl_counter)
                    } else {
                        name.clone()
                    };
                    self.local_names.insert(name.clone(), rendered.clone());
                    self.local_elems.insert(name.clone(), *elem);
                    let slot = self.slots.declare(name);
                    debug_assert_eq!(slot, self.slot_names.len());
                    self.slot_names.push(format!("{rendered}[__t]"));
                    self.decls.push((rendered.clone(), *elem));
                    self.emit_line(format!("{rendered}[__t] = {init_text};"));
                }
                ElabStmt::AssignLocal { name, value } => {
                    let mut text = String::new();
                    self.expr(value, &mut text)?;
                    let n = self
                        .local_names
                        .get(name)
                        .ok_or_else(|| CodegenError::UnknownLocal(name.clone()))?
                        .clone();
                    self.emit_line(format!("{n}[__t] = {text};"));
                }
                ElabStmt::Store { access, value } => {
                    let mut value_text = String::new();
                    self.expr(value, &mut value_text)?;
                    let value_text = self.be.store_conversion(access.elem, value_text);
                    let mut target = String::new();
                    self.access(access, &mut target)?;
                    if self.atomic_bufs.contains(&access.mem) {
                        self.emit_line(self.be.atomic_buffer_store(
                            access.elem,
                            &target,
                            &value_text,
                        ));
                    } else {
                        self.emit_line(format!("{target} = {value_text};"));
                    }
                }
                ElabStmt::Split {
                    space,
                    dim,
                    threshold,
                    fst,
                    snd,
                } => {
                    let coord = space_coord(self.be, *space, *dim, self.kernel);
                    self.conds.push(format!("{coord} < {threshold}"));
                    self.stmts(fst)?;
                    self.conds.pop();
                    if !snd.is_empty() {
                        self.conds.push(format!("{coord} >= {threshold}"));
                        self.stmts(snd)?;
                        self.conds.pop();
                    }
                }
                ElabStmt::Atomic {
                    op,
                    access,
                    index,
                    value,
                } => {
                    let mut value_text = String::new();
                    self.expr(value, &mut value_text)?;
                    let name = match access.mem {
                        MemKind::GlobalParam(i) => &self.kernel.params[i].name,
                        MemKind::Shared(i) => &self.kernel.shared[i].name,
                    };
                    let global = matches!(access.mem, MemKind::GlobalParam(_));
                    match index {
                        None => {
                            let slots = &self.slots;
                            let idx = atomic_index_expr(access, None, &|n| slots.get(n))?;
                            let mut target = format!("{name}[");
                            render_ir_expr_named(
                                self.be,
                                &idx,
                                self.kernel,
                                &self.slot_names,
                                &mut target,
                            );
                            target.push(']');
                            let call =
                                self.be
                                    .atomic_rmw(*op, access.elem, global, &target, &value_text);
                            self.emit_line(call);
                        }
                        Some(ie) => {
                            // Scatter target: bind the runtime index
                            // once, then guard — same shape as `BodyCx`,
                            // but multi-line so an OpenMP pragma inside
                            // the guard stays on its own line.
                            let mut idx_init = String::new();
                            self.expr(ie, &mut idx_init)?;
                            let tmp = format!("descend_idx_{}", self.scatter_counter);
                            self.scatter_counter += 1;
                            let init = self.be.cast(ScalarKind::I32, &idx_init);
                            let raw = lower_scalar_access(&access.path, &access.root_dims)
                                .map_err(|e| CodegenError::Lowering(e.to_string()))?;
                            let mut names = self.slot_names.clone();
                            let tmp_slot = names.len();
                            names.push(self.be.scatter_index_use(&tmp));
                            let idx = idx_to_expr_subst(&raw, &|v| {
                                (v == DYN_IDX).then_some(Expr::Local(tmp_slot))
                            })?;
                            let mut idx_text = String::new();
                            render_ir_expr_named(self.be, &idx, self.kernel, &names, &mut idx_text);
                            let target = format!("{name}[{idx_text}]");
                            let call =
                                self.be
                                    .atomic_rmw(*op, access.elem, global, &target, &value_text);
                            let mut total = 1u64;
                            for d in &access.root_dims {
                                total *= d.as_lit().ok_or_else(|| {
                                    CodegenError::Lowering(format!(
                                        "non-literal root dimension `{d}` in atomic scatter bound"
                                    ))
                                })?;
                            }
                            let mut text = String::new();
                            let _ = writeln!(text, "int32_t {tmp} = {init};");
                            let _ =
                                writeln!(text, "if (0 <= {idx_text} && {idx_text} < {total}) {{");
                            for line in call.lines() {
                                let _ = writeln!(text, "    {line}");
                            }
                            let _ = write!(text, "}}");
                            self.emit_line(text);
                        }
                    }
                }
                ElabStmt::Sync => self.break_phase(),
                // Source markers carry trace attribution only.
                ElabStmt::Src(_) => {}
            }
        }
        Ok(())
    }

    /// Assembles the collected phases into the kernel function text.
    fn render(self, k: &MonoKernel) -> Result<String, CodegenError> {
        let be = self.be;
        let [gx, gy, gz] = k.grid_dim;
        let [bx, by, bz] = k.block_dim;
        let grid_total = gx * gy * gz;
        let block_total = bx * by * bz;

        // Everything the body references, for declaring only the
        // coordinate locals that are actually used (`-Wall -Werror`).
        let mut all_text = String::new();
        for p in &self.phases {
            for c in &p.chunks {
                for s in &c.stmts {
                    all_text.push_str(s);
                }
                for cond in &c.conds {
                    all_text.push_str(cond);
                }
            }
        }

        let mut out = String::new();
        let _ = write!(out, "void {}(", k.name);
        for (i, p) in k.params.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            if p.uniq {
                let _ = write!(out, "{}* {}", be.scalar_type(p.elem), p.name);
            } else {
                let _ = write!(out, "const {}* {}", be.scalar_type(p.elem), p.name);
            }
        }
        out.push_str(") {\n");
        for (axis, dim) in [(Axis::X, bx), (Axis::Y, by), (Axis::Z, bz)] {
            let n = format!("blockDim_{}", axis_name(axis));
            if all_text.contains(&n) {
                let _ = writeln!(out, "    const int64_t {n} = {dim};");
            }
        }
        for (axis, dim) in [(Axis::X, gx), (Axis::Y, gy), (Axis::Z, gz)] {
            let n = format!("gridDim_{}", axis_name(axis));
            if all_text.contains(&n) {
                let _ = writeln!(out, "    const int64_t {n} = {dim};");
            }
        }
        out.push_str("    #pragma omp parallel for\n");
        let _ = writeln!(
            out,
            "    for (int64_t __b = 0; __b < {grid_total}; __b++) {{"
        );
        if all_text.contains("blockIdx_x") {
            let _ = writeln!(out, "        const int64_t blockIdx_x = __b % {gx};");
        }
        if all_text.contains("blockIdx_y") {
            let _ = writeln!(
                out,
                "        const int64_t blockIdx_y = (__b / {gx}) % {gy};"
            );
        }
        if all_text.contains("blockIdx_z") {
            let _ = writeln!(out, "        const int64_t blockIdx_z = __b / {};", gx * gy);
        }
        for s in &k.shared {
            let total: u64 = s.dims.iter().product();
            let _ = writeln!(
                out,
                "        {} {}[{}] = {{0}};",
                be.scalar_type(s.elem),
                s.name,
                total
            );
        }
        for (name, elem) in &self.decls {
            let _ = writeln!(
                out,
                "        {} {}[{}] = {{0}};",
                compute_type(*elem),
                name,
                block_total
            );
        }
        for (name, elem) in &self.shfl_decls {
            let _ = writeln!(
                out,
                "        {} {}[{}] = {{0}};",
                compute_type(*elem),
                name,
                block_total
            );
        }
        for phase in &self.phases {
            if phase.chunks.is_empty() {
                continue;
            }
            let mut ptext = String::new();
            for c in &phase.chunks {
                for s in &c.stmts {
                    ptext.push_str(s);
                }
                for cond in &c.conds {
                    ptext.push_str(cond);
                }
            }
            let _ = writeln!(
                out,
                "        for (int64_t __t = 0; __t < {block_total}; __t++) {{"
            );
            if ptext.contains("threadIdx_x") {
                let _ = writeln!(out, "            const int64_t threadIdx_x = __t % {bx};");
            }
            if ptext.contains("threadIdx_y") {
                let _ = writeln!(
                    out,
                    "            const int64_t threadIdx_y = (__t / {bx}) % {by};"
                );
            }
            if ptext.contains("threadIdx_z") {
                let _ = writeln!(
                    out,
                    "            const int64_t threadIdx_z = __t / {};",
                    bx * by
                );
            }
            for chunk in &phase.chunks {
                for (d, cond) in chunk.conds.iter().enumerate() {
                    indent(&mut out, 3 + d);
                    let _ = writeln!(out, "if ({cond}) {{");
                }
                let depth = 3 + chunk.conds.len();
                for stmt in &chunk.stmts {
                    for line in stmt.lines() {
                        indent(&mut out, depth);
                        out.push_str(line);
                        out.push('\n');
                    }
                }
                for d in (0..chunk.conds.len()).rev() {
                    indent(&mut out, 3 + d);
                    out.push_str("}\n");
                }
            }
            out.push_str("        }\n");
        }
        out.push_str("    }\n}\n");
        Ok(out)
    }
}

fn ast_binop(op: AstBinOp) -> &'static str {
    match op {
        AstBinOp::Add => "+",
        AstBinOp::Sub => "-",
        AstBinOp::Mul => "*",
        AstBinOp::Div => "/",
        AstBinOp::Mod => "%",
        AstBinOp::Lt => "<",
        AstBinOp::Le => "<=",
        AstBinOp::Gt => ">",
        AstBinOp::Ge => ">=",
        AstBinOp::Eq => "==",
        AstBinOp::Ne => "!=",
        AstBinOp::And => "&&",
        AstBinOp::Or => "||",
    }
}
