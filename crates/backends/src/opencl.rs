//! The OpenCL C backend.
//!
//! Kernels render as `__kernel` functions with `__global` buffer
//! parameters and `__local` staging arrays; `sync` becomes
//! `barrier(CLK_LOCAL_MEM_FENCE)`. Host functions render as C stubs
//! against the OpenCL runtime API (`clCreateBuffer`,
//! `clEnqueueNDRangeKernel`, ...). Index expressions come from the
//! shared lowering in [`crate::shared`], so they are structurally the
//! ones the simulator executes — only the coordinate spellings
//! (`get_group_id(0)` for `blockIdx.x`, ...) differ from CUDA.

use crate::shared::{
    for_each_stmt, indent, kernel_uses_scalar, kernel_uses_shuffle, BodyCx, Builtin, HostSizes,
};
use crate::KernelBackend;
use descend_ast::term::{AtomicOp, ShflKind};
use descend_codegen::CodegenError;
use descend_typeck::{CheckedProgram, ElabStmt, HostStmt, MonoKernel, ScalarKind};
use gpu_sim::ir::Axis;
use std::fmt::Write as _;

/// The OpenCL C target.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpenClBackend;

/// Buffer element spelling at the kernel ABI boundary: `bool` is not a
/// valid OpenCL kernel-argument or buffer element type, so bool buffers
/// travel as `uchar` (locals keep `bool`).
fn buffer_type(k: ScalarKind) -> &'static str {
    match k {
        ScalarKind::F64 => "double",
        ScalarKind::F32 => "float",
        ScalarKind::I32 => "int",
        ScalarKind::U32 => "uint",
        ScalarKind::Bool => "uchar",
    }
}

/// Whether any kernel performs an f32 `atomic_add` (which OpenCL C has
/// no native intrinsic for; the prelude then defines CAS-loop helpers
/// over the bit pattern, one per address space).
fn uses_f32_atomic_add(checked: &CheckedProgram) -> bool {
    let mut hit = false;
    for k in &checked.kernels {
        for_each_stmt(&k.body, &mut |s| {
            if let ElabStmt::Atomic { op, access, .. } = s {
                hit |= *op == AtomicOp::Add && access.elem == ScalarKind::F32;
            }
        });
    }
    hit
}

fn axis_index(a: Axis) -> usize {
    match a {
        Axis::X => 0,
        Axis::Y => 1,
        Axis::Z => 2,
    }
}

impl KernelBackend for OpenClBackend {
    fn name(&self) -> &'static str {
        "opencl"
    }

    fn file_extension(&self) -> &'static str {
        "cl"
    }

    fn scalar_type(&self, k: ScalarKind) -> &'static str {
        match k {
            ScalarKind::F64 => "double",
            ScalarKind::F32 => "float",
            ScalarKind::I32 => "int",
            ScalarKind::U32 => "uint",
            ScalarKind::Bool => "bool",
        }
    }

    fn builtin(&self, b: Builtin, axis: Axis) -> String {
        let f = match b {
            Builtin::BlockIdx => "get_group_id",
            Builtin::ThreadIdx => "get_local_id",
            Builtin::BlockDim => "get_local_size",
            Builtin::GridDim => "get_num_groups",
        };
        format!("{f}({})", axis_index(axis))
    }

    fn barrier(&self) -> &'static str {
        "barrier(CLK_LOCAL_MEM_FENCE);"
    }

    fn literal(&self, kind: ScalarKind, v: f64) -> String {
        match kind {
            ScalarKind::F64 => format!("{v:?}"),
            ScalarKind::F32 => format!("{v:?}f"),
            ScalarKind::I32 => format!("{}", v as i64),
            ScalarKind::U32 => format!("{}u", v as i64),
            ScalarKind::Bool => format!("{}", v != 0.0),
        }
    }

    fn atomic_rmw(
        &self,
        op: AtomicOp,
        elem: ScalarKind,
        global: bool,
        target: &str,
        value: &str,
    ) -> String {
        let space = if global { "__global" } else { "__local" };
        // OpenCL 1.x atomic functions take `volatile <space> T*`
        // pointers; f32 add goes through the CAS-loop helpers the
        // prelude defines (f32 exchange is native `atomic_xchg`).
        if elem == ScalarKind::F32 && op == AtomicOp::Add {
            let helper = if global {
                "descend_atomic_add_f32_global"
            } else {
                "descend_atomic_add_f32_local"
            };
            return format!("{helper}(&{target}, {value});");
        }
        let f = match op {
            AtomicOp::Add => "atomic_add",
            AtomicOp::Min => "atomic_min",
            AtomicOp::Max => "atomic_max",
            AtomicOp::Exch => "atomic_xchg",
        };
        let t = self.scalar_type(elem);
        format!("{f}((volatile {space} {t}*)&{target}, {value});")
    }

    fn shuffle(&self, kind: ShflKind, value: &str, delta: u32) -> String {
        // The simulator (and CUDA's `__shfl_down_sync`) define the
        // out-of-range case: lanes whose source would cross the warp
        // boundary keep their own value. OpenCL's
        // `sub_group_shuffle_down` leaves it undefined — and guarding
        // the *call* with a ternary would be worse: sub-group shuffles
        // are collective, so a lane that skips the call makes every
        // lane's result undefined. Instead the general
        // `sub_group_shuffle` (cl_khr_subgroup_shuffle, whose pragma is
        // already emitted) executes unconditionally on all lanes, and
        // only the *source index* is clamped to the lane's own id when
        // it would cross the boundary. Xor masks < 32 are always in
        // range.
        match kind {
            ShflKind::Down => format!(
                "sub_group_shuffle({value}, (get_sub_group_local_id() + {delta}u < 32u ? \
                 get_sub_group_local_id() + {delta}u : get_sub_group_local_id()))"
            ),
            ShflKind::Xor => format!("sub_group_shuffle_xor({value}, {delta}u)"),
        }
    }

    fn local_decl(&self, elem: ScalarKind, name: &str, init: &str) -> String {
        format!("{} {name} = {init};", self.scalar_type(elem))
    }

    fn emit_kernel(&self, k: &MonoKernel) -> Result<String, CodegenError> {
        let mut out = String::new();
        if kernel_uses_shuffle(k) {
            // The host must pick a kernel-enqueue local size whose
            // sub-group size is 32 (matching the simulated warp width);
            // `intel_reqd_sub_group_size` pins it where supported.
            out.push_str("__attribute__((intel_reqd_sub_group_size(32)))\n");
        }
        let _ = write!(out, "__kernel void {}(", k.name);
        for (i, p) in k.params.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            if p.uniq {
                let _ = write!(out, "__global {}* {}", buffer_type(p.elem), p.name);
            } else {
                let _ = write!(out, "__global const {}* {}", buffer_type(p.elem), p.name);
            }
        }
        out.push_str(") {\n");
        for s in &k.shared {
            indent(&mut out, 1);
            let total: u64 = s.dims.iter().product();
            let _ = writeln!(
                out,
                "__local {} {}[{}];",
                buffer_type(s.elem),
                s.name,
                total
            );
        }
        BodyCx::new(self, k).stmts(&k.body, &mut out, 1)?;
        out.push_str("}\n");
        Ok(out)
    }

    fn emit_host_fn(
        &self,
        name: &str,
        stmts: &[HostStmt],
        kernels: &[MonoKernel],
    ) -> Result<String, CodegenError> {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "/* Host stub; assumes a cl_context `ctx`, an in-order cl_command_queue `queue`,\n \
             * and one cl_kernel `k_<name>` per kernel, built from this translation unit. */"
        );
        let _ = writeln!(out, "void {name}(void) {{");
        let mut sizes = HostSizes::new();
        for s in stmts {
            sizes.record(s);
            indent(&mut out, 1);
            match s {
                HostStmt::AllocCpu { name, elem, len } => {
                    let t = buffer_type(*elem);
                    let _ = writeln!(out, "{t}* {name} = ({t}*)calloc({len}, sizeof({t}));");
                }
                HostStmt::AllocGpu { name, elem, len } => {
                    let t = buffer_type(*elem);
                    let _ = writeln!(
                        out,
                        "cl_mem {name} = clCreateBuffer(ctx, CL_MEM_READ_WRITE, {len} * sizeof({t}), NULL, NULL); {{ {t} zero = 0; clEnqueueFillBuffer(queue, {name}, &zero, sizeof({t}), 0, {len} * sizeof({t}), 0, NULL, NULL); }}"
                    );
                }
                HostStmt::AllocGpuCopy { name, src, elem } => {
                    let (_, len) = sizes.get(src);
                    let t = buffer_type(*elem);
                    let _ = writeln!(
                        out,
                        "cl_mem {name} = clCreateBuffer(ctx, CL_MEM_READ_WRITE | CL_MEM_COPY_HOST_PTR, {len} * sizeof({t}), {src}, NULL);"
                    );
                }
                HostStmt::CopyToHost { dst, src } => {
                    let (elem, len) = sizes.get(dst);
                    let t = buffer_type(elem);
                    let _ = writeln!(
                        out,
                        "clEnqueueReadBuffer(queue, {src}, CL_TRUE, 0, {len} * sizeof({t}), {dst}, 0, NULL, NULL);"
                    );
                }
                HostStmt::CopyToGpu { dst, src } => {
                    let (elem, len) = sizes.get(dst);
                    let t = buffer_type(elem);
                    let _ = writeln!(
                        out,
                        "clEnqueueWriteBuffer(queue, {dst}, CL_TRUE, 0, {len} * sizeof({t}), {src}, 0, NULL, NULL);"
                    );
                }
                HostStmt::Launch { kernel, args } => {
                    let k = &kernels[*kernel];
                    let mut set_args = String::new();
                    for (i, a) in args.iter().enumerate() {
                        let _ = write!(
                            set_args,
                            "clSetKernelArg(k_{}, {i}, sizeof(cl_mem), &{a}); ",
                            k.name
                        );
                    }
                    let gws = [
                        k.grid_dim[0] * k.block_dim[0],
                        k.grid_dim[1] * k.block_dim[1],
                        k.grid_dim[2] * k.block_dim[2],
                    ];
                    let _ = writeln!(
                        out,
                        "{{ {set_args}size_t gws[3] = {{{}, {}, {}}}; size_t lws[3] = {{{}, {}, {}}}; clEnqueueNDRangeKernel(queue, k_{}, 3, NULL, gws, lws, 0, NULL, NULL); }}",
                        gws[0],
                        gws[1],
                        gws[2],
                        k.block_dim[0],
                        k.block_dim[1],
                        k.block_dim[2],
                        k.name
                    );
                }
            }
        }
        out.push_str("}\n");
        Ok(out)
    }

    fn prelude(&self, checked: &CheckedProgram) -> String {
        let mut out = String::new();
        if checked
            .kernels
            .iter()
            .any(|k| kernel_uses_scalar(k, ScalarKind::F64))
        {
            out.push_str("#pragma OPENCL EXTENSION cl_khr_fp64 : enable\n\n");
        }
        if checked.kernels.iter().any(kernel_uses_shuffle) {
            // Both emitted intrinsics — the general `sub_group_shuffle`
            // (boundary-clamped `Down`) and `sub_group_shuffle_xor` —
            // live in cl_khr_subgroup_shuffle; the `_relative` extension
            // (shuffle_up/down) is not used.
            out.push_str(
                "#pragma OPENCL EXTENSION cl_khr_subgroups : enable\n\
                 #pragma OPENCL EXTENSION cl_khr_subgroup_shuffle : enable\n\n",
            );
        }
        if uses_f32_atomic_add(checked) {
            out.push_str(
                "/* f32 atomic add is not native in OpenCL C: compare-and-swap on the bit\n \
                 * pattern, per address space (volatile, as the atomic builtins require). */\n\
                 inline void descend_atomic_add_f32_global(volatile __global float* p, float v) {\n\
                 \x20   union { unsigned int u; float f; } old_val, new_val;\n\
                 \x20   do {\n\
                 \x20       old_val.f = *p;\n\
                 \x20       new_val.f = old_val.f + v;\n\
                 \x20   } while (atomic_cmpxchg((volatile __global unsigned int*)p, old_val.u, new_val.u) != old_val.u);\n\
                 }\n\
                 inline void descend_atomic_add_f32_local(volatile __local float* p, float v) {\n\
                 \x20   union { unsigned int u; float f; } old_val, new_val;\n\
                 \x20   do {\n\
                 \x20       old_val.f = *p;\n\
                 \x20       new_val.f = old_val.f + v;\n\
                 \x20   } while (atomic_cmpxchg((volatile __local unsigned int*)p, old_val.u, new_val.u) != old_val.u);\n\
                 }\n\n",
            );
        }
        out
    }
}
