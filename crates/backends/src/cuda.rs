//! The CUDA C++ backend.
//!
//! Produces the text a real Descend compiler would hand to `nvcc`. The
//! output is golden-tested against the paper's benchmark kernels; we
//! cannot run it (no NVIDIA toolchain in this reproduction — see
//! DESIGN.md), but its index expressions are byte-for-byte the ones the
//! simulator executes, via the shared lowering in [`crate::shared`].

use crate::shared::{axis_name, indent, BodyCx, Builtin, HostSizes};
use crate::KernelBackend;
use descend_ast::term::{AtomicOp, ShflKind};
use descend_codegen::CodegenError;
use descend_typeck::{CheckedProgram, HostStmt, MonoKernel, ScalarKind};
use gpu_sim::ir::Axis;
use std::fmt::Write as _;

/// The CUDA C++ target.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CudaBackend;

impl KernelBackend for CudaBackend {
    fn name(&self) -> &'static str {
        "cuda"
    }

    fn file_extension(&self) -> &'static str {
        "cu"
    }

    fn scalar_type(&self, k: ScalarKind) -> &'static str {
        k.cuda_name()
    }

    fn builtin(&self, b: Builtin, axis: Axis) -> String {
        let base = match b {
            Builtin::BlockIdx => "blockIdx",
            Builtin::ThreadIdx => "threadIdx",
            Builtin::BlockDim => "blockDim",
            Builtin::GridDim => "gridDim",
        };
        format!("{base}.{}", axis_name(axis))
    }

    fn barrier(&self) -> &'static str {
        "__syncthreads();"
    }

    fn literal(&self, kind: ScalarKind, v: f64) -> String {
        match kind {
            ScalarKind::F64 => format!("{v:?}"),
            ScalarKind::F32 => format!("{v:?}f"),
            ScalarKind::I32 => format!("{}", v as i64),
            ScalarKind::U32 => format!("{}u", v as i64),
            ScalarKind::Bool => format!("{}", v != 0.0),
        }
    }

    fn atomic_rmw(
        &self,
        op: AtomicOp,
        _elem: ScalarKind,
        _global: bool,
        target: &str,
        value: &str,
    ) -> String {
        // CUDA's intrinsics overload on the pointee type (f32
        // `atomicAdd`/`atomicExch` are native; the checker restricts
        // min/max to integer places).
        let f = match op {
            AtomicOp::Add => "atomicAdd",
            AtomicOp::Min => "atomicMin",
            AtomicOp::Max => "atomicMax",
            AtomicOp::Exch => "atomicExch",
        };
        format!("{f}(&{target}, {value});")
    }

    fn shuffle(&self, kind: ShflKind, value: &str, delta: u32) -> String {
        // The full-warp member mask: the checker guarantees every lane
        // of the warp executes the shuffle (no lane-space splits).
        let f = match kind {
            ShflKind::Down => "__shfl_down_sync",
            ShflKind::Xor => "__shfl_xor_sync",
        };
        format!("{f}(0xffffffff, {value}, {delta})")
    }

    fn local_decl(&self, elem: ScalarKind, name: &str, init: &str) -> String {
        format!("{} {name} = {init};", self.scalar_type(elem))
    }

    fn emit_kernel(&self, k: &MonoKernel) -> Result<String, CodegenError> {
        let mut out = String::new();
        let _ = write!(out, "__global__ void {}(", k.name);
        for (i, p) in k.params.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            if p.uniq {
                let _ = write!(out, "{}* {}", self.scalar_type(p.elem), p.name);
            } else {
                let _ = write!(out, "const {}* {}", self.scalar_type(p.elem), p.name);
            }
        }
        out.push_str(") {\n");
        for s in &k.shared {
            indent(&mut out, 1);
            let total: u64 = s.dims.iter().product();
            let _ = writeln!(
                out,
                "__shared__ {} {}[{}];",
                self.scalar_type(s.elem),
                s.name,
                total
            );
        }
        BodyCx::new(self, k).stmts(&k.body, &mut out, 1)?;
        out.push_str("}\n");
        Ok(out)
    }

    fn emit_host_fn(
        &self,
        name: &str,
        stmts: &[HostStmt],
        kernels: &[MonoKernel],
    ) -> Result<String, CodegenError> {
        let mut out = String::new();
        let _ = writeln!(out, "void {name}() {{");
        let mut sizes = HostSizes::new();
        for s in stmts {
            sizes.record(s);
            indent(&mut out, 1);
            match s {
                HostStmt::AllocCpu { name, elem, len } => {
                    let t = self.scalar_type(*elem);
                    let _ = writeln!(out, "{t}* {name} = ({t}*)calloc({len}, sizeof({t}));");
                }
                HostStmt::AllocGpu { name, elem, len } => {
                    let t = self.scalar_type(*elem);
                    let _ = writeln!(
                        out,
                        "{t}* {name}; cudaMalloc(&{name}, {len} * sizeof({t})); cudaMemset({name}, 0, {len} * sizeof({t}));"
                    );
                }
                HostStmt::AllocGpuCopy { name, src, elem } => {
                    let (_, len) = sizes.get(src);
                    let t = self.scalar_type(*elem);
                    let _ = writeln!(
                        out,
                        "{t}* {name}; cudaMalloc(&{name}, {len} * sizeof({t})); cudaMemcpy({name}, {src}, {len} * sizeof({t}), cudaMemcpyHostToDevice);"
                    );
                }
                HostStmt::CopyToHost { dst, src } => {
                    let (elem, len) = sizes.get(dst);
                    let t = self.scalar_type(elem);
                    let _ = writeln!(
                        out,
                        "cudaMemcpy({dst}, {src}, {len} * sizeof({t}), cudaMemcpyDeviceToHost);"
                    );
                }
                HostStmt::CopyToGpu { dst, src } => {
                    let (elem, len) = sizes.get(dst);
                    let t = self.scalar_type(elem);
                    let _ = writeln!(
                        out,
                        "cudaMemcpy({dst}, {src}, {len} * sizeof({t}), cudaMemcpyHostToDevice);"
                    );
                }
                HostStmt::Launch { kernel, args } => {
                    let k = &kernels[*kernel];
                    let _ = writeln!(
                        out,
                        "{}<<<dim3({}, {}, {}), dim3({}, {}, {})>>>({});",
                        k.name,
                        k.grid_dim[0],
                        k.grid_dim[1],
                        k.grid_dim[2],
                        k.block_dim[0],
                        k.block_dim[1],
                        k.block_dim[2],
                        args.join(", ")
                    );
                }
            }
        }
        out.push_str("}\n");
        Ok(out)
    }

    fn prelude(&self, _checked: &CheckedProgram) -> String {
        String::from("#include <cuda_runtime.h>\n#include <cstdlib>\n\n")
    }
}

/// Emits CUDA C++ for one kernel.
///
/// # Errors
///
/// Propagates lowering failures (see [`CodegenError`]).
pub fn kernel_to_cuda(k: &MonoKernel) -> Result<String, CodegenError> {
    CudaBackend.emit_kernel(k)
}
