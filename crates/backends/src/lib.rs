//! Multi-target code emission behind one shared lowering.
//!
//! The paper's Section 5 translation is deliberately target-agnostic:
//! `sched` dissolves into an SPMD kernel, views become index arithmetic,
//! `split` becomes a coordinate condition and `sync` a barrier. This
//! crate factors the *rendering* of that translation behind the
//! [`KernelBackend`] trait so one safe front end serves many GPU
//! targets. Four backends ship today:
//!
//! - [`CudaBackend`] — CUDA C++ (`__global__`, `__shared__`,
//!   `__syncthreads()`), byte-identical to the historical emitter,
//! - [`OpenClBackend`] — OpenCL C (`__kernel`, `__local`,
//!   `barrier(CLK_LOCAL_MEM_FENCE)`),
//! - [`WgslBackend`] — WGSL compute shaders (`@compute`,
//!   `var<workgroup>`, `workgroupBarrier()`; one module per kernel),
//! - [`CBackend`] — portable C11 with OpenMP, the one target this
//!   repository can *execute*: blocks become `#pragma omp parallel for`
//!   iterations, barriers become loop fission over the threads of a
//!   block, and the differential harness runs the result against the
//!   simulator (see `crates/native` and `tests/native_diff.rs`).
//!
//! # The trait contract
//!
//! A backend supplies *syntax only*: scalar-type spellings
//! ([`KernelBackend::scalar_type`]), coordinate-builtin spellings
//! ([`KernelBackend::builtin`]), literal formats
//! ([`KernelBackend::literal`]), local-declaration shape
//! ([`KernelBackend::local_decl`]), the barrier statement
//! ([`KernelBackend::barrier`]), atomic RMW calls
//! ([`KernelBackend::atomic_rmw`] — CUDA `atomicAdd(&p, v)`, OpenCL
//! `atomic_add((volatile __global int*)&p, v)` plus f32 CAS-loop
//! helpers, WGSL `atomicAdd` on `array<atomic<T>>` with
//! `atomicStore`/`atomicLoad` for plain accesses to the same buffer),
//! and the kernel/host-stub framing
//! ([`KernelBackend::emit_kernel`], [`KernelBackend::emit_host_fn`]).
//!
//! Everything *semantic* is shared and non-overridable in practice:
//! statement and expression bodies render through [`shared::BodyCx`],
//! and — crucially — every memory-access index goes through
//! [`shared::access_index_expr`], the single
//! `lower_scalar_access` → `idx_to_expr` path that also feeds the
//! simulator IR ([`descend_codegen::kernel_to_ir`]). No backend has its
//! own copy of index-expression printing, so all targets stay
//! structurally consistent with what the simulator executes; the
//! cross-backend consistency test in the workspace root pins this.
//!
//! Adding a target (Metal, a PTX-like sim dialect, ...) means
//! implementing the syntax hooks plus the two framing methods and
//! registering the backend in [`all_backends`] — the lowering itself is
//! untouched.
//!
//! # Example
//!
//! ```
//! use descend_backends::{all_backends, backend_by_name};
//!
//! let names: Vec<&str> = all_backends().iter().map(|b| b.name()).collect();
//! assert_eq!(names, ["cuda", "opencl", "wgsl", "c"]);
//! assert_eq!(backend_by_name("wgsl").unwrap().file_extension(), "wgsl");
//! assert!(backend_by_name("metal").is_none());
//! ```

#![deny(missing_docs)]

pub mod c;
pub mod cuda;
pub mod opencl;
pub mod shared;
pub mod wgsl;

pub use c::CBackend;
pub use cuda::CudaBackend;
pub use opencl::OpenClBackend;
pub use shared::{
    access_index_expr, atomic_index_expr, atomic_targets, for_each_stmt, ir_index_exprs,
    kernel_index_exprs, kernel_inline_index_exprs, render_ir_expr, render_ir_expr_named, Builtin,
    SlotMap,
};
pub use wgsl::WgslBackend;

use descend_ast::term::{AtomicOp, ShflKind};
use descend_codegen::CodegenError;
use descend_typeck::{CheckedProgram, HostStmt, MonoKernel, ScalarKind};
use gpu_sim::ir::Axis;

/// A code-emission target.
///
/// Implementations provide target syntax; the semantics (index
/// arithmetic, statement structure) come from the shared lowering in
/// [`shared`]. See the crate docs for the full contract.
pub trait KernelBackend {
    /// The registry name (`"cuda"`, `"opencl"`, `"wgsl"`).
    fn name(&self) -> &'static str;

    /// Conventional source-file extension (without the dot).
    fn file_extension(&self) -> &'static str;

    /// Spelling of a scalar element type.
    fn scalar_type(&self, k: ScalarKind) -> &'static str;

    /// Spelling of a hardware coordinate builtin along an axis
    /// (e.g. `blockIdx.x`, `get_group_id(0)`, `block_idx.x`).
    fn builtin(&self, b: Builtin, axis: Axis) -> String;

    /// The block-wide barrier statement, without indentation.
    fn barrier(&self) -> &'static str;

    /// Spelling of a scalar literal of the given kind.
    fn literal(&self, kind: ScalarKind, v: f64) -> String;

    /// A thread-private local declaration with initializer, without
    /// indentation or trailing newline (e.g. `double x = 0.0;` or
    /// `var x: f32 = 0.0;`).
    fn local_decl(&self, elem: ScalarKind, name: &str, init: &str) -> String;

    /// Wraps a rendered buffer *load* for targets whose buffer element
    /// spelling differs from the value type (default: identity; WGSL
    /// converts `u32`-carried bools back to `bool`).
    fn load_conversion(&self, _elem: ScalarKind, text: String) -> String {
        text
    }

    /// Wraps a rendered value about to be *stored* to a buffer
    /// (default: identity; see [`KernelBackend::load_conversion`]).
    fn store_conversion(&self, _elem: ScalarKind, text: String) -> String {
        text
    }

    /// Renders one atomic RMW statement (without indentation or trailing
    /// newline). `target` is the rendered lvalue (e.g. `hist[idx]`),
    /// `value` the rendered operand; `global` says whether the target
    /// lives in global (true) or shared/workgroup (false) memory —
    /// OpenCL's address-space-qualified helpers need the distinction.
    fn atomic_rmw(
        &self,
        op: AtomicOp,
        elem: ScalarKind,
        global: bool,
        target: &str,
        value: &str,
    ) -> String;

    /// Renders a warp-shuffle expression over the rendered operand:
    /// CUDA `__shfl_down_sync(0xffffffff, v, d)` /
    /// `__shfl_xor_sync(0xffffffff, v, d)`, OpenCL
    /// `sub_group_shuffle` (general form, source index clamped for
    /// `Down`) / `sub_group_shuffle_xor` — both from
    /// `cl_khr_subgroup_shuffle`, whose pragma the prelude emits — and
    /// WGSL `subgroupShuffleDown` / `subgroupShuffleXor` (gated by
    /// `enable subgroups;`).
    ///
    /// The contract is the simulator's (and CUDA's) semantics: a `Down`
    /// source beyond the warp boundary yields the lane's own value.
    /// Targets whose intrinsic leaves that case undefined (OpenCL,
    /// WGSL) must emit an explicit clamp — without making the
    /// *collective* call itself conditional: every lane must execute
    /// the shuffle intrinsic (WGSL selects between the unconditionally
    /// computed result and the lane's own value; OpenCL clamps the
    /// source index of the general `sub_group_shuffle`).
    fn shuffle(&self, kind: ShflKind, value: &str, delta: u32) -> String;

    /// Renders a *plain* store to a buffer that is an atomic target
    /// elsewhere in the kernel (default: ordinary assignment; WGSL must
    /// spell `atomicStore` — with a `bitcast<u32>` for f32 targets,
    /// whose buffers are declared `atomic<u32>`).
    fn atomic_buffer_store(&self, _elem: ScalarKind, target: &str, value: &str) -> String {
        format!("{target} = {value};")
    }

    /// Wraps a *plain* load from a buffer that is an atomic target
    /// elsewhere in the kernel (default: identity; WGSL spells
    /// `atomicLoad`, bitcast back to f32 for f32 targets).
    fn atomic_buffer_load(&self, _elem: ScalarKind, text: String) -> String {
        text
    }

    /// Spelling of an explicit scalar conversion (used for the emitted
    /// scatter-index temporary). Default is the C-style cast shared by
    /// CUDA C++ and OpenCL C; WGSL overrides with a value constructor.
    fn cast(&self, to: ScalarKind, text: &str) -> String {
        format!("({})({text})", self.scalar_type(to))
    }

    /// Spelling of the scatter-index temporary where it is *used* inside
    /// an element-address expression (default: the bare name). WGSL
    /// wraps it in `u32(...)`: its coordinate builtins make address
    /// arithmetic u32-typed and the language has no implicit integer
    /// conversions, so a bare i32 temporary would not validate when the
    /// target place carries a static coordinate offset. A negative index
    /// wraps to a huge u32 and fails the `< len` guard, preserving the
    /// bounds check.
    fn scatter_index_use(&self, name: &str) -> String {
        name.to_string()
    }

    /// Renders one kernel.
    ///
    /// # Errors
    ///
    /// Propagates lowering failures (see [`CodegenError`]).
    fn emit_kernel(&self, k: &MonoKernel) -> Result<String, CodegenError>;

    /// Renders the host-side stub for one host function.
    ///
    /// # Errors
    ///
    /// Propagates lowering failures (see [`CodegenError`]).
    fn emit_host_fn(
        &self,
        name: &str,
        stmts: &[HostStmt],
        kernels: &[MonoKernel],
    ) -> Result<String, CodegenError>;

    /// Target-specific translation-unit header (includes, pragmas,
    /// narrowing notes); may inspect the program to decide what is
    /// needed.
    fn prelude(&self, checked: &CheckedProgram) -> String;

    /// Renders a complete translation unit: prelude, all kernels, all
    /// host stubs.
    ///
    /// # Errors
    ///
    /// Propagates lowering failures (see [`CodegenError`]).
    fn emit_program(&self, checked: &CheckedProgram) -> Result<String, CodegenError> {
        let mut out = self.prelude(checked);
        for k in &checked.kernels {
            out.push_str(&self.emit_kernel(k)?);
            out.push('\n');
        }
        for (name, stmts) in &checked.host_fns {
            out.push_str(&self.emit_host_fn(name, stmts, &checked.kernels)?);
            out.push('\n');
        }
        Ok(out)
    }
}

/// The registry names, in registry order.
pub const BACKEND_NAMES: &[&str] = &["cuda", "opencl", "wgsl", "c"];

/// All registered backends, in [`BACKEND_NAMES`] order.
pub fn all_backends() -> Vec<Box<dyn KernelBackend>> {
    vec![
        Box::new(CudaBackend),
        Box::new(OpenClBackend),
        Box::new(WgslBackend),
        Box::new(CBackend),
    ]
}

/// Looks up a backend by registry name.
pub fn backend_by_name(name: &str) -> Option<Box<dyn KernelBackend>> {
    match name {
        "cuda" => Some(Box::new(CudaBackend)),
        "opencl" => Some(Box::new(OpenClBackend)),
        "wgsl" => Some(Box::new(WgslBackend)),
        "c" => Some(Box::new(CBackend)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_consistent() {
        let all = all_backends();
        assert_eq!(all.len(), BACKEND_NAMES.len());
        for (be, name) in all.iter().zip(BACKEND_NAMES) {
            assert_eq!(be.name(), *name);
            let found = backend_by_name(name).expect("registered");
            assert_eq!(found.name(), *name);
        }
        assert!(backend_by_name("ptx").is_none());
    }

    #[test]
    fn scalar_maps_cover_every_kind() {
        for be in all_backends() {
            for k in [
                ScalarKind::F64,
                ScalarKind::F32,
                ScalarKind::I32,
                ScalarKind::Bool,
            ] {
                assert!(!be.scalar_type(k).is_empty(), "{}/{k:?}", be.name());
                assert!(!be.literal(k, 1.0).is_empty());
            }
        }
    }

    #[test]
    fn barrier_spellings_differ_per_target() {
        assert_eq!(CudaBackend.barrier(), "__syncthreads();");
        assert_eq!(OpenClBackend.barrier(), "barrier(CLK_LOCAL_MEM_FENCE);");
        assert_eq!(WgslBackend.barrier(), "workgroupBarrier();");
    }
}
