//! The WGSL (WebGPU Shading Language) backend.
//!
//! Each kernel renders as a standalone WGSL module: storage-buffer
//! bindings at `@group(0)`, `var<workgroup>` staging arrays, and a
//! `@compute` entry point whose `@workgroup_size` attribute carries the
//! block shape. `blockIdx`/`threadIdx` become the `workgroup_id` and
//! `local_invocation_id` builtins (declared as entry-point parameters
//! `block_idx`/`thread_idx`), and `sync` becomes `workgroupBarrier()`.
//!
//! WGSL has no `f64`, so `f64` buffers and locals are narrowed to `f32`
//! (flagged by a comment in the module header). Index expressions come
//! from the shared lowering in [`crate::shared`] and are structurally
//! the ones the simulator executes.
//!
//! Host functions have no WGSL spelling — the host side of WebGPU is
//! JavaScript — so they render as a commented WebGPU sketch that keeps
//! allocation sizes, dispatch shapes and copy directions reviewable.

use crate::shared::{
    atomic_targets, axis_name, kernel_uses_scalar, kernel_uses_shuffle, BodyCx, Builtin, HostSizes,
};
use crate::KernelBackend;
use descend_ast::term::{AtomicOp, ShflKind};
use descend_codegen::CodegenError;
use descend_typeck::{CheckedProgram, HostStmt, MemKind, MonoKernel, ScalarKind};
use gpu_sim::ir::Axis;
use std::fmt::Write as _;

/// The WGSL target.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WgslBackend;

/// Buffer element spelling: `bool` is not host-shareable in WGSL, so
/// bool storage/workgroup arrays travel as `u32` (locals keep `bool`).
fn buffer_type(be: &WgslBackend, k: ScalarKind) -> &'static str {
    match k {
        ScalarKind::Bool => "u32",
        other => be.scalar_type(other),
    }
}

/// Element spelling for buffers that are atomic targets: WGSL only has
/// `atomic<i32>`/`atomic<u32>`, so f32 atomic targets are declared as
/// `atomic<u32>` carrying the float's bit pattern (updated by the
/// CAS-loop helper noted in the module header).
fn atomic_elem_type(k: ScalarKind) -> &'static str {
    match k {
        ScalarKind::I32 => "atomic<i32>",
        // f64 never reaches atomics (checker-rejected); bool either.
        _ => "atomic<u32>",
    }
}

/// Narrowed element size in bytes on the WGSL side (`f64` -> `f32`).
fn wgsl_size_bytes(k: ScalarKind) -> u64 {
    match k {
        ScalarKind::F64
        | ScalarKind::F32
        | ScalarKind::I32
        | ScalarKind::U32
        | ScalarKind::Bool => 4,
    }
}

/// The JavaScript typed-array constructor matching a (narrowed) scalar.
fn typed_array(k: ScalarKind) -> &'static str {
    match k {
        ScalarKind::F64 | ScalarKind::F32 => "Float32Array",
        ScalarKind::I32 => "Int32Array",
        ScalarKind::U32 | ScalarKind::Bool => "Uint32Array",
    }
}

impl KernelBackend for WgslBackend {
    fn name(&self) -> &'static str {
        "wgsl"
    }

    fn file_extension(&self) -> &'static str {
        "wgsl"
    }

    fn scalar_type(&self, k: ScalarKind) -> &'static str {
        match k {
            // WGSL has no f64; doubles are narrowed (see module docs).
            ScalarKind::F64 => "f32",
            ScalarKind::F32 => "f32",
            ScalarKind::I32 => "i32",
            ScalarKind::U32 => "u32",
            ScalarKind::Bool => "bool",
        }
    }

    fn builtin(&self, b: Builtin, axis: Axis) -> String {
        let base = match b {
            Builtin::BlockIdx => "block_idx",
            Builtin::ThreadIdx => "thread_idx",
            Builtin::BlockDim => "block_dim",
            Builtin::GridDim => "grid_dim",
        };
        format!("{base}.{}", axis_name(axis))
    }

    fn barrier(&self) -> &'static str {
        "workgroupBarrier();"
    }

    fn literal(&self, kind: ScalarKind, v: f64) -> String {
        match kind {
            // Abstract-typed literals; WGSL converts them to the
            // surrounding f32/i32/u32 context.
            ScalarKind::F64 | ScalarKind::F32 => format!("{v:?}"),
            ScalarKind::I32 => format!("{}", v as i64),
            ScalarKind::U32 => format!("{}u", v as i64),
            ScalarKind::Bool => format!("{}", v != 0.0),
        }
    }

    fn atomic_rmw(
        &self,
        op: AtomicOp,
        elem: ScalarKind,
        _global: bool,
        target: &str,
        value: &str,
    ) -> String {
        if elem == ScalarKind::F32 {
            // No `atomic<f32>` in WGSL: the buffer is declared
            // `atomic<u32>` and updated by a CAS loop over the bit
            // pattern (helper sketched in the module header note).
            return match op {
                AtomicOp::Add => format!("descendAtomicAddF32(&{target}, {value});"),
                AtomicOp::Exch => format!("atomicExchange(&{target}, bitcast<u32>({value}));"),
                // Rejected by the type checker; panic loudly rather than
                // silently inventing an undefined helper.
                AtomicOp::Min | AtomicOp::Max => {
                    unreachable!("f32 atomic min/max are rejected by the type checker")
                }
            };
        }
        let f = match op {
            AtomicOp::Add => "atomicAdd",
            AtomicOp::Min => "atomicMin",
            AtomicOp::Max => "atomicMax",
            AtomicOp::Exch => "atomicExchange",
        };
        format!("{f}(&{target}, {value});")
    }

    fn atomic_buffer_store(&self, elem: ScalarKind, target: &str, value: &str) -> String {
        // f32 atomic targets are declared atomic<u32> (bit pattern).
        if elem == ScalarKind::F32 || elem == ScalarKind::F64 {
            format!("atomicStore(&{target}, bitcast<u32>({value}));")
        } else {
            format!("atomicStore(&{target}, {value});")
        }
    }

    fn cast(&self, to: ScalarKind, text: &str) -> String {
        format!("{}({text})", self.scalar_type(to))
    }

    fn scatter_index_use(&self, name: &str) -> String {
        format!("u32({name})")
    }

    fn atomic_buffer_load(&self, elem: ScalarKind, text: String) -> String {
        if elem == ScalarKind::F32 || elem == ScalarKind::F64 {
            format!("bitcast<f32>(atomicLoad(&{text}))")
        } else {
            format!("atomicLoad(&{text})")
        }
    }

    fn shuffle(&self, kind: ShflKind, value: &str, delta: u32) -> String {
        // Subgroup builtins (behind `enable subgroups;`, emitted in the
        // module header when the kernel shuffles). The simulator (and
        // CUDA) define out-of-range `Down` sources to keep the lane's
        // own value; WGSL's `subgroupShuffleDown` leaves them
        // indeterminate, so the top `delta` lanes select their own value
        // (the lane id is `thread_idx.x % 32` under the module's 32-lane
        // subgroup assumption). Xor masks < 32 are always in range.
        match kind {
            ShflKind::Down => format!(
                "select(subgroupShuffleDown({value}, {delta}u), {value}, thread_idx.x % 32u + {delta}u >= 32u)"
            ),
            ShflKind::Xor => format!("subgroupShuffleXor({value}, {delta}u)"),
        }
    }

    fn local_decl(&self, elem: ScalarKind, name: &str, init: &str) -> String {
        format!("var {name}: {} = {init};", self.scalar_type(elem))
    }

    fn load_conversion(&self, elem: ScalarKind, text: String) -> String {
        // Bool buffers are carried as u32 (not host-shareable as bool);
        // convert back at the use site.
        if elem == ScalarKind::Bool {
            format!("({text} != 0)")
        } else {
            text
        }
    }

    fn store_conversion(&self, elem: ScalarKind, text: String) -> String {
        if elem == ScalarKind::Bool {
            format!("select(0u, 1u, {text})")
        } else {
            text
        }
    }

    fn emit_kernel(&self, k: &MonoKernel) -> Result<String, CodegenError> {
        let atomics = atomic_targets(k);
        let mut out = String::new();
        let _ = writeln!(out, "// Kernel `{}` — standalone WGSL module.", k.name);
        if kernel_uses_shuffle(k) {
            // Subgroup builtins need the extension; the simulated warp
            // width assumes a 32-lane subgroup (note for the host side,
            // which can check `subgroupMinSize`/`subgroupMaxSize`).
            out.push_str("enable subgroups;\n");
            out.push_str("// note: shuffles assume a 32-lane subgroup.\n");
        }
        if kernel_uses_scalar(k, ScalarKind::F64) {
            out.push_str("// note: f64 narrowed to f32 (WGSL has no f64).\n");
        }
        let f32_atomic =
            k.params.iter().enumerate().any(|(i, p)| {
                p.elem == ScalarKind::F32 && atomics.contains(&MemKind::GlobalParam(i))
            }) || k
                .shared
                .iter()
                .enumerate()
                .any(|(i, s)| s.elem == ScalarKind::F32 && atomics.contains(&MemKind::Shared(i)));
        if f32_atomic {
            out.push_str(
                "// note: WGSL has no atomic<f32>; f32 atomic targets are declared\n\
                 // atomic<u32> over the float bit pattern, and descendAtomicAddF32 is\n\
                 // a CAS loop: loop { let o = atomicLoad(p); if atomicCompareExchangeWeak(p,\n\
                 // o, bitcast<u32>(bitcast<f32>(o) + v)).exchanged { break; } }\n",
            );
        }
        for (i, p) in k.params.iter().enumerate() {
            let total: u64 = p.dims.iter().product();
            let access = if p.uniq { "read_write" } else { "read" };
            let elem_text = if atomics.contains(&MemKind::GlobalParam(i)) {
                atomic_elem_type(p.elem)
            } else {
                buffer_type(self, p.elem)
            };
            let _ = writeln!(
                out,
                "@group(0) @binding({i}) var<storage, {access}> {}: array<{elem_text}, {total}>;",
                p.name
            );
        }
        for (i, s) in k.shared.iter().enumerate() {
            let total: u64 = s.dims.iter().product();
            let elem_text = if atomics.contains(&MemKind::Shared(i)) {
                atomic_elem_type(s.elem)
            } else {
                buffer_type(self, s.elem)
            };
            let _ = writeln!(
                out,
                "var<workgroup> {}: array<{elem_text}, {total}>;",
                s.name
            );
        }
        // `block_dim` has no runtime builtin in WGSL (the workgroup
        // size is a compile-time attribute), so declare it as a module
        // constant; every coordinate builtin the shared renderer can
        // produce then names a declared identifier.
        let _ = writeln!(
            out,
            "const block_dim: vec3<u32> = vec3<u32>({}, {}, {});",
            k.block_dim[0], k.block_dim[1], k.block_dim[2]
        );
        out.push('\n');
        let _ = writeln!(
            out,
            "@compute @workgroup_size({}, {}, {})",
            k.block_dim[0], k.block_dim[1], k.block_dim[2]
        );
        let _ = writeln!(
            out,
            "fn {}(@builtin(workgroup_id) block_idx: vec3<u32>, @builtin(local_invocation_id) thread_idx: vec3<u32>, @builtin(num_workgroups) grid_dim: vec3<u32>) {{",
            k.name
        );
        BodyCx::new(self, k).stmts(&k.body, &mut out, 1)?;
        out.push_str("}\n");
        Ok(out)
    }

    fn emit_host_fn(
        &self,
        name: &str,
        stmts: &[HostStmt],
        kernels: &[MonoKernel],
    ) -> Result<String, CodegenError> {
        let mut out = String::new();
        let _ = writeln!(out, "// Host function `{name}` (WebGPU JavaScript sketch;");
        out.push_str("// WGSL has no host side — sizes, dispatches and copies only):\n");
        let mut sizes = HostSizes::new();
        for s in stmts {
            sizes.record(s);
            match s {
                HostStmt::AllocCpu { name, elem, len } => {
                    let _ = writeln!(
                        out,
                        "//   const {name} = new {}({len});",
                        typed_array(*elem)
                    );
                }
                HostStmt::AllocGpu { name, elem, len } => {
                    let _ = writeln!(
                        out,
                        "//   const {name} = device.createBuffer({{ size: {}, usage: STORAGE | COPY_SRC | COPY_DST }});",
                        len * wgsl_size_bytes(*elem)
                    );
                }
                HostStmt::AllocGpuCopy { name, src, elem } => {
                    let (_, len) = sizes.get(src);
                    let _ = writeln!(
                        out,
                        "//   const {name} = device.createBuffer({{ size: {}, usage: STORAGE | COPY_SRC | COPY_DST }});",
                        len * wgsl_size_bytes(*elem)
                    );
                    let _ = writeln!(out, "//   device.queue.writeBuffer({name}, 0, {src});");
                }
                HostStmt::CopyToHost { dst, src } => {
                    let _ = writeln!(
                        out,
                        "//   await readBack({src}, {dst});  // staging copy + mapAsync"
                    );
                }
                HostStmt::CopyToGpu { dst, src } => {
                    let _ = writeln!(out, "//   device.queue.writeBuffer({dst}, 0, {src});");
                }
                HostStmt::Launch { kernel, args } => {
                    let k = &kernels[*kernel];
                    let _ = writeln!(
                        out,
                        "//   dispatch('{}', [{}, {}, {}], [{}]);  // workgroups x bindings",
                        k.name,
                        k.grid_dim[0],
                        k.grid_dim[1],
                        k.grid_dim[2],
                        args.join(", ")
                    );
                }
            }
        }
        Ok(out)
    }

    fn prelude(&self, _checked: &CheckedProgram) -> String {
        String::from(
            "// WGSL translation unit: one standalone module per kernel\n\
             // (bindings restart at @group(0) @binding(0) in each section).\n\n",
        )
    }
}
