//! Execution resources: the algebra of grids, blocks and threads.
//!
//! This crate implements the paper's Figure 2: an execution resource is
//! either the CPU thread or the GPU grid refined by a sequence of
//! `.forall(dim)` (schedule over all sub-resources along a dimension) and
//! `.split(pos, dim).fst/.snd` (partition into two independent groups)
//! operations. Figure 1 of the paper visualizes exactly these shapes.
//!
//! Operations first refine *block space* (the arrangement of blocks in the
//! grid); once every declared block dimension has been scheduled, further
//! operations refine *thread space* (the threads within each block). The
//! type checker uses this algebra for:
//!
//! - tracking which resource executes each statement (`T-Sched`),
//! - the *narrowing* check: a unique access must select once for every
//!   [`ForallLevel`] introduced below the owner of the accessed memory,
//! - distinctness of split branches,
//! - the barrier legality rule (no `sync` under a thread-space split).
//!
//! ## Warps
//!
//! The paper's Figure 4/5 hierarchy has *four* levels: grid → blocks →
//! warps → lanes. The [`ExecOp::ToWarps`] refinement exposes the lower
//! two: applied to a block whose thread space is one-dimensional in `X`
//! with an extent divisible by [`WARP_SIZE`], it re-interprets the
//! threads as *warp space* (`extent / 32` warps) followed by *lane
//! space* (32 lanes per warp). Both behave like ordinary spaces:
//! `forall` schedules over them, `split` partitions them, selects
//! distribute memory over them, and the narrowing check counts their
//! levels. A lane-space split cuts through warps, which is what makes
//! shuffle intrinsics illegal under it (warp divergence).

#![deny(missing_docs)]

use descend_ast::ty::{Dim, DimCompo, ExecTy};
use descend_ast::Nat;
use std::fmt;

/// Threads per warp. Fixed at the CUDA/P100 value; the simulator's
/// lockstep warp grouping and the cost model's default `warp_size`
/// agree with this constant.
pub const WARP_SIZE: u64 = 32;

/// Which half of a split.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Side {
    /// The first part: coordinates `[0, pos)`.
    Fst,
    /// The second part: coordinates `[pos, extent)`.
    Snd,
}

impl fmt::Display for Side {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Side::Fst => write!(f, "fst"),
            Side::Snd => write!(f, "snd"),
        }
    }
}

/// A refinement operation on an execution resource.
#[derive(Clone, Debug, PartialEq)]
pub enum ExecOp {
    /// `.forall(d)`: schedule over all sub-resources along dimension `d`.
    Forall(DimCompo),
    /// `.split(pos, d).side`: restrict to one part of a partition of
    /// dimension `d` at position `pos`.
    Split {
        /// Split dimension.
        dim: DimCompo,
        /// Split position.
        pos: Nat,
        /// Which part was selected.
        side: Side,
    },
    /// `.to_warps()`: re-interpret a 1-D `X` thread space (extent a
    /// multiple of [`WARP_SIZE`]) as warp space over lane space.
    ToWarps,
}

impl ExecOp {
    /// Structural equality up to nat normalization.
    pub fn same(&self, other: &ExecOp) -> bool {
        match (self, other) {
            (ExecOp::Forall(a), ExecOp::Forall(b)) => a == b,
            (
                ExecOp::Split {
                    dim: d1,
                    pos: p1,
                    side: s1,
                },
                ExecOp::Split {
                    dim: d2,
                    pos: p2,
                    side: s2,
                },
            ) => d1 == d2 && p1.equal(p2) && s1 == s2,
            (ExecOp::ToWarps, ExecOp::ToWarps) => true,
            _ => false,
        }
    }
}

/// The base of an execution resource.
#[derive(Clone, Debug, PartialEq)]
pub enum ExecBase {
    /// A single CPU thread.
    CpuThread,
    /// A GPU grid with block arrangement `blocks` and per-block thread
    /// arrangement `threads`.
    GpuGrid {
        /// Shape of the block arrangement.
        blocks: Dim,
        /// Shape of the threads within each block.
        threads: Dim,
    },
}

/// The space an operation applies to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Space {
    /// The arrangement of blocks within the grid.
    Block,
    /// The arrangement of threads within a block.
    Thread,
    /// The arrangement of warps within a block (after [`ExecOp::ToWarps`]).
    Warp,
    /// The arrangement of lanes within a warp (after [`ExecOp::ToWarps`]).
    Lane,
}

impl Space {
    /// The lower-case noun used in diagnostics (`"block"`, `"thread"`,
    /// `"warp"`, `"lane"`).
    pub fn noun(self) -> &'static str {
        match self {
            Space::Block => "block",
            Space::Thread => "thread",
            Space::Warp => "warp",
            Space::Lane => "lane",
        }
    }
}

/// One `forall` level of an execution resource: scheduling over a
/// dimension with a known extent. Unique accesses must *select* once per
/// level introduced below the owner of the accessed memory (narrowing).
#[derive(Clone, Debug, PartialEq)]
pub struct ForallLevel {
    /// Index of the corresponding [`ExecOp::Forall`] in [`ExecExpr::ops`].
    pub op_index: usize,
    /// Whether the level schedules blocks or threads.
    pub space: Space,
    /// The scheduled dimension.
    pub dim: DimCompo,
    /// Number of sub-resources at this level (after narrowing splits).
    pub extent: Nat,
}

/// Errors from constructing execution resources.
#[derive(Clone, Debug, PartialEq)]
pub enum ExecError {
    /// Scheduling or splitting a dimension the shape does not declare.
    MissingDim {
        /// The missing dimension.
        dim: DimCompo,
        /// The space in which it was missing.
        space: Space,
    },
    /// Scheduling a dimension that was already scheduled.
    AlreadyScheduled(DimCompo, Space),
    /// Refining a fully scheduled resource (a single thread).
    NothingToSchedule,
    /// Refining the CPU thread, which has no sub-resources.
    CpuHasNoHierarchy,
    /// A split position that provably exceeds the dimension extent.
    SplitOutOfRange {
        /// The requested position.
        pos: Nat,
        /// The available extent.
        extent: Nat,
    },
    /// `.to_warps()` applied where it is not legal: block space is not
    /// fully scheduled, the thread space is not 1-D in `X`, thread
    /// operations were already applied, or the extent is not a multiple
    /// of [`WARP_SIZE`].
    BadToWarps(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::MissingDim { dim, space } => write!(
                f,
                "cannot schedule over dimension {dim}: the {} shape does not declare it",
                space.noun()
            ),
            ExecError::AlreadyScheduled(d, _) => {
                write!(f, "dimension {d} has already been scheduled")
            }
            ExecError::NothingToSchedule => {
                write!(
                    f,
                    "execution resource is a single thread; nothing to schedule"
                )
            }
            ExecError::CpuHasNoHierarchy => {
                write!(f, "cpu.thread has no execution hierarchy to schedule over")
            }
            ExecError::SplitOutOfRange { pos, extent } => {
                write!(f, "split position {pos} exceeds extent {extent}")
            }
            ExecError::BadToWarps(m) => write!(f, "cannot form warps: {m}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// An execution resource: a base refined by a sequence of operations
/// (paper Figure 2).
///
/// # Examples
///
/// ```
/// use descend_ast::ty::{Dim, DimCompo};
/// use descend_exec::ExecExpr;
///
/// // Figure 1 of the paper: a grid of 2x2x1 blocks of 4x4x4 threads.
/// let grid = ExecExpr::grid(Dim::xyz(2u64, 2u64, 1u64), Dim::xyz(4u64, 4u64, 4u64));
/// let blocks = grid
///     .forall(DimCompo::X).unwrap()
///     .forall(DimCompo::Z).unwrap();
/// assert_eq!(blocks.forall_levels().len(), 2);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct ExecExpr {
    /// The base resource.
    pub base: ExecBase,
    /// Refinement operations, applied left to right.
    pub ops: Vec<ExecOp>,
}

/// The per-dimension scheduling state within one space.
#[derive(Clone, Debug, PartialEq)]
struct DimState {
    /// Remaining extent (narrowed by splits).
    extent: Nat,
    /// Consumed by a forall.
    scheduled: bool,
}

/// Scheduling state of all spaces, derived by replaying ops.
///
/// Before [`ExecOp::ToWarps`], the spaces are block then thread. After
/// it, the thread space is *replaced* by warp space over lane space
/// (`warped` is set and `thread` is drained).
#[derive(Clone, Debug, PartialEq)]
struct State {
    block: Vec<(DimCompo, DimState)>,
    thread: Vec<(DimCompo, DimState)>,
    warp: Vec<(DimCompo, DimState)>,
    lane: Vec<(DimCompo, DimState)>,
    warped: bool,
    /// Whether any op was applied in thread space (forbids a later
    /// `.to_warps()`, whose lane arithmetic assumes warp alignment).
    thread_touched: bool,
}

impl State {
    fn dims(&self, space: Space) -> &Vec<(DimCompo, DimState)> {
        match space {
            Space::Block => &self.block,
            Space::Thread => &self.thread,
            Space::Warp => &self.warp,
            Space::Lane => &self.lane,
        }
    }

    fn space_done(&self, space: Space) -> bool {
        self.dims(space).iter().all(|(_, s)| s.scheduled)
    }

    fn current_space(&self) -> Option<Space> {
        let order: &[Space] = if self.warped {
            &[Space::Block, Space::Warp, Space::Lane]
        } else {
            &[Space::Block, Space::Thread]
        };
        order.iter().copied().find(|s| !self.space_done(*s))
    }

    fn dim_state(&mut self, space: Space, dim: DimCompo) -> Option<&mut DimState> {
        let dims = match space {
            Space::Block => &mut self.block,
            Space::Thread => &mut self.thread,
            Space::Warp => &mut self.warp,
            Space::Lane => &mut self.lane,
        };
        dims.iter_mut().find(|(d, _)| *d == dim).map(|(_, s)| s)
    }
}

impl ExecExpr {
    /// The CPU thread resource.
    pub fn cpu_thread() -> ExecExpr {
        ExecExpr {
            base: ExecBase::CpuThread,
            ops: Vec::new(),
        }
    }

    /// A full GPU grid.
    pub fn grid(blocks: Dim, threads: Dim) -> ExecExpr {
        ExecExpr {
            base: ExecBase::GpuGrid { blocks, threads },
            ops: Vec::new(),
        }
    }

    /// Replays the operations to compute the scheduling state.
    ///
    /// Construction via [`ExecExpr::forall`]/[`ExecExpr::split`] validates
    /// each op, so replay cannot fail on values built through this API.
    fn state(&self) -> Result<State, ExecError> {
        let (bd, td) = match &self.base {
            ExecBase::CpuThread => {
                return if self.ops.is_empty() {
                    Ok(State {
                        block: Vec::new(),
                        thread: Vec::new(),
                        warp: Vec::new(),
                        lane: Vec::new(),
                        warped: false,
                        thread_touched: false,
                    })
                } else {
                    Err(ExecError::CpuHasNoHierarchy)
                };
            }
            ExecBase::GpuGrid { blocks, threads } => (blocks, threads),
        };
        let to_states = |d: &Dim| {
            d.components()
                .map(|(c, n)| {
                    (
                        c,
                        DimState {
                            extent: n.clone(),
                            scheduled: false,
                        },
                    )
                })
                .collect::<Vec<_>>()
        };
        let mut st = State {
            block: to_states(bd),
            thread: to_states(td),
            warp: Vec::new(),
            lane: Vec::new(),
            warped: false,
            thread_touched: false,
        };
        for op in &self.ops {
            if matches!(op, ExecOp::ToWarps) {
                apply_to_warps(&mut st)?;
                continue;
            }
            let space = st.current_space().ok_or(ExecError::NothingToSchedule)?;
            if space == Space::Thread {
                st.thread_touched = true;
            }
            match op {
                ExecOp::Forall(d) => {
                    let ds = st
                        .dim_state(space, *d)
                        .ok_or(ExecError::MissingDim { dim: *d, space })?;
                    if ds.scheduled {
                        return Err(ExecError::AlreadyScheduled(*d, space));
                    }
                    ds.scheduled = true;
                }
                ExecOp::Split { dim, pos, side } => {
                    let ds = st
                        .dim_state(space, *dim)
                        .ok_or(ExecError::MissingDim { dim: *dim, space })?;
                    if ds.scheduled {
                        return Err(ExecError::AlreadyScheduled(*dim, space));
                    }
                    if let (Some(p), Some(e)) = (pos.as_lit(), ds.extent.as_lit()) {
                        if p > e {
                            return Err(ExecError::SplitOutOfRange {
                                pos: pos.clone(),
                                extent: ds.extent.clone(),
                            });
                        }
                    }
                    ds.extent = match side {
                        Side::Fst => pos.clone(),
                        Side::Snd => ds.extent.clone() - pos.clone(),
                    };
                }
                ExecOp::ToWarps => unreachable!("handled before the space lookup"),
            }
        }
        Ok(st)
    }

    /// The space the *next* operation would refine, or `None` for a fully
    /// scheduled (single-thread) resource.
    pub fn current_space(&self) -> Option<Space> {
        self.state().ok().and_then(|s| s.current_space())
    }

    /// Extends the resource with `.to_warps()`: the (so far untouched,
    /// 1-D `X`) thread space becomes warp space over lane space.
    ///
    /// # Errors
    ///
    /// [`ExecError::BadToWarps`] if block space is not fully scheduled,
    /// the thread space is not one-dimensional in `X`, thread operations
    /// were already applied, or the extent is not a literal multiple of
    /// [`WARP_SIZE`].
    pub fn to_warps(&self) -> Result<ExecExpr, ExecError> {
        let mut next = self.clone();
        next.ops.push(ExecOp::ToWarps);
        next.state()?;
        Ok(next)
    }

    /// Whether `.to_warps()` was applied anywhere in the op sequence.
    pub fn under_warps(&self) -> bool {
        self.ops.iter().any(|op| matches!(op, ExecOp::ToWarps))
    }

    /// Whether the lane space contains a split anywhere in the op
    /// sequence. Such a split cuts *through* warps, so shuffle
    /// intrinsics (which exchange values between all 32 lanes of a warp
    /// in lockstep) are illegal under it.
    pub fn lane_space_has_split(&self) -> bool {
        self.has_split_in(&[Space::Lane])
    }

    /// Whether any split op was applied while the current space was one
    /// of `spaces` (the one prefix-replay walk behind the barrier and
    /// shuffle legality checks).
    fn has_split_in(&self, spaces: &[Space]) -> bool {
        let mut prefix = ExecExpr {
            base: self.base.clone(),
            ops: Vec::new(),
        };
        for op in &self.ops {
            if matches!(op, ExecOp::Split { .. }) {
                match prefix.current_space() {
                    Some(s) if spaces.contains(&s) => return true,
                    _ => {}
                }
            }
            prefix.ops.push(op.clone());
        }
        false
    }

    /// Extends the resource with `.forall(dim)`.
    ///
    /// # Errors
    ///
    /// Returns an error if the dimension is missing from the current
    /// space's shape, was already scheduled, or if the resource has no
    /// hierarchy left to schedule.
    pub fn forall(&self, dim: DimCompo) -> Result<ExecExpr, ExecError> {
        let mut next = self.clone();
        next.ops.push(ExecOp::Forall(dim));
        next.state()?;
        Ok(next)
    }

    /// Extends the resource with `.split(pos, dim).side`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ExecExpr::forall`], plus a provably
    /// out-of-range split position.
    pub fn split(&self, dim: DimCompo, pos: Nat, side: Side) -> Result<ExecExpr, ExecError> {
        let mut next = self.clone();
        next.ops.push(ExecOp::Split { dim, pos, side });
        next.state()?;
        Ok(next)
    }

    /// The extent that dimension `dim` of the current space would offer to
    /// the next operation (after narrowing by previous splits).
    pub fn remaining_extent(&self, dim: DimCompo) -> Option<Nat> {
        let st = self.state().ok()?;
        let space = st.current_space()?;
        let dims = st.dims(space);
        dims.iter()
            .find(|(d, s)| *d == dim && !s.scheduled)
            .map(|(_, s)| s.extent.clone())
    }

    /// All forall levels in order of introduction.
    pub fn forall_levels(&self) -> Vec<ForallLevel> {
        let mut levels = Vec::new();
        let mut prefix = ExecExpr {
            base: self.base.clone(),
            ops: Vec::new(),
        };
        for (i, op) in self.ops.iter().enumerate() {
            if let ExecOp::Forall(d) = op {
                let space = prefix
                    .current_space()
                    .expect("validated exec has a space for every op");
                let extent = prefix
                    .remaining_extent(*d)
                    .expect("validated exec has an extent for every forall");
                levels.push(ForallLevel {
                    op_index: i,
                    space,
                    dim: *d,
                    extent,
                });
            }
            prefix.ops.push(op.clone());
        }
        levels
    }

    /// The forall levels introduced by this resource beyond the given
    /// prefix resource (used for narrowing: the levels between the owner
    /// of a memory object and the accessing resource).
    ///
    /// Returns `None` if `owner` is not a prefix of `self`.
    pub fn levels_beyond(&self, owner: &ExecExpr) -> Option<Vec<ForallLevel>> {
        if !owner.is_prefix_of(self) {
            return None;
        }
        Some(
            self.forall_levels()
                .into_iter()
                .filter(|l| l.op_index >= owner.ops.len())
                .collect(),
        )
    }

    /// Whether `self` is a prefix of `other` (i.e. `other` is a
    /// sub-resource of `self`, or the same resource).
    pub fn is_prefix_of(&self, other: &ExecExpr) -> bool {
        self.base == other.base
            && self.ops.len() <= other.ops.len()
            && self.ops.iter().zip(&other.ops).all(|(a, b)| a.same(b))
    }

    /// Whether two resources denote provably disjoint sets of executors:
    /// they share a common prefix and then diverge at a split into
    /// different sides (same dimension, same position).
    pub fn definitely_disjoint(&self, other: &ExecExpr) -> bool {
        if self.base != other.base {
            // Resources from different bases never co-execute a kernel.
            return true;
        }
        for (a, b) in self.ops.iter().zip(&other.ops) {
            if a.same(b) {
                continue;
            }
            return match (a, b) {
                (
                    ExecOp::Split {
                        dim: d1,
                        pos: p1,
                        side: s1,
                    },
                    ExecOp::Split {
                        dim: d2,
                        pos: p2,
                        side: s2,
                    },
                ) => d1 == d2 && p1.equal(p2) && s1 != s2,
                _ => false,
            };
        }
        false
    }

    /// Whether the sub-block space (threads, warps, or lanes) contains a
    /// split anywhere in the op sequence. A barrier (`sync`) is only
    /// legal when it does not — every thread of the block must reach the
    /// barrier (paper Section 2.2); warp- and lane-space splits restrict
    /// to a subset of the block's threads just like thread-space splits.
    pub fn thread_space_has_split(&self) -> bool {
        self.has_split_in(&[Space::Thread, Space::Warp, Space::Lane])
    }

    /// The execution level of this resource, for checking function
    /// annotations: a grid while block space is not fully scheduled, a
    /// block once it is, a thread once both spaces are.
    pub fn level(&self) -> ExecTy {
        match &self.base {
            ExecBase::CpuThread => ExecTy::CpuThread,
            ExecBase::GpuGrid { blocks, threads } => {
                let st = self.state().expect("validated exec expression");
                if !st.space_done(Space::Block) {
                    ExecTy::GpuGrid(blocks.clone(), threads.clone())
                } else if st.warped {
                    if !st.space_done(Space::Warp) {
                        ExecTy::GpuBlock(threads.clone())
                    } else if !st.space_done(Space::Lane) {
                        ExecTy::GpuWarp
                    } else {
                        ExecTy::GpuThread
                    }
                } else if !st.space_done(Space::Thread) {
                    ExecTy::GpuBlock(threads.clone())
                } else {
                    ExecTy::GpuThread
                }
            }
        }
    }

    /// Number of executors denoted by one instance of this resource:
    /// the product of all *unscheduled* extents (scheduled dimensions
    /// denote separate instances).
    pub fn instance_size(&self) -> Option<u64> {
        let st = self.state().ok()?;
        let mut total = 1u64;
        for (_, s) in st
            .block
            .iter()
            .chain(st.thread.iter())
            .chain(st.warp.iter())
            .chain(st.lane.iter())
        {
            if !s.scheduled {
                total *= s.extent.as_lit()?;
            }
        }
        Some(total)
    }

    /// Structural equality up to nat normalization.
    pub fn same(&self, other: &ExecExpr) -> bool {
        let base_same = match (&self.base, &other.base) {
            (ExecBase::CpuThread, ExecBase::CpuThread) => true,
            (
                ExecBase::GpuGrid {
                    blocks: b1,
                    threads: t1,
                },
                ExecBase::GpuGrid {
                    blocks: b2,
                    threads: t2,
                },
            ) => b1.same(b2) && t1.same(t2),
            _ => false,
        };
        base_same
            && self.ops.len() == other.ops.len()
            && self.ops.iter().zip(&other.ops).all(|(a, b)| a.same(b))
    }
}

/// Replays one [`ExecOp::ToWarps`]: validates the thread space and
/// installs warp and lane spaces in its place.
fn apply_to_warps(st: &mut State) -> Result<(), ExecError> {
    if st.warped {
        return Err(ExecError::BadToWarps("warps are already formed".into()));
    }
    if !st.space_done(Space::Block) {
        return Err(ExecError::BadToWarps(
            "schedule all block dimensions first".into(),
        ));
    }
    if st.thread.len() != 1 || st.thread[0].0 != DimCompo::X {
        return Err(ExecError::BadToWarps(
            "the thread space must be one-dimensional in X".into(),
        ));
    }
    let (_, ds) = &st.thread[0];
    if ds.scheduled || st.thread_touched {
        return Err(ExecError::BadToWarps(
            "thread-space operations were already applied".into(),
        ));
    }
    let Some(extent) = ds.extent.as_lit() else {
        return Err(ExecError::BadToWarps(format!(
            "thread extent `{}` is not statically known",
            ds.extent
        )));
    };
    if extent == 0 || extent % WARP_SIZE != 0 {
        return Err(ExecError::BadToWarps(format!(
            "thread extent {extent} is not a multiple of the warp size {WARP_SIZE}"
        )));
    }
    st.thread.clear();
    st.warp = vec![(
        DimCompo::X,
        DimState {
            extent: Nat::lit(extent / WARP_SIZE),
            scheduled: false,
        },
    )];
    st.lane = vec![(
        DimCompo::X,
        DimState {
            extent: Nat::lit(WARP_SIZE),
            scheduled: false,
        },
    )];
    st.warped = true;
    Ok(())
}

impl fmt::Display for ExecExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.base {
            ExecBase::CpuThread => write!(f, "cpu.thread")?,
            ExecBase::GpuGrid { blocks, threads } => write!(f, "gpu.grid<{blocks},{threads}>")?,
        }
        for op in &self.ops {
            match op {
                ExecOp::Forall(d) => write!(f, ".forall({d})")?,
                ExecOp::Split { dim, pos, side } => write!(f, ".split({pos}, {dim}).{side}")?,
                ExecOp::ToWarps => write!(f, ".to_warps()")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1_grid() -> ExecExpr {
        // gpu.grid<XYZ<2,2,1>, XYZ<4,4,4>> from Figure 1 of the paper.
        ExecExpr::grid(Dim::xyz(2u64, 2u64, 1u64), Dim::xyz(4u64, 4u64, 4u64))
    }

    #[test]
    fn figure_1a_full_grid() {
        let g = fig1_grid();
        assert_eq!(g.instance_size(), Some(2 * 2 * 4 * 4 * 4));
        assert!(matches!(g.level(), ExecTy::GpuGrid(..)));
        assert_eq!(g.current_space(), Some(Space::Block));
    }

    #[test]
    fn figure_1b_forall_x_forall_z() {
        // Scheduling in X and Z leaves groups of two blocks (the Y column).
        let e = fig1_grid()
            .forall(DimCompo::X)
            .unwrap()
            .forall(DimCompo::Z)
            .unwrap();
        assert_eq!(e.instance_size(), Some(2 * 4 * 4 * 4));
        let levels = e.forall_levels();
        assert_eq!(levels.len(), 2);
        assert_eq!(levels[0].dim, DimCompo::X);
        assert_eq!(levels[0].space, Space::Block);
        assert_eq!(levels[0].extent.as_lit(), Some(2));
        assert_eq!(levels[1].dim, DimCompo::Z);
        assert_eq!(levels[1].extent.as_lit(), Some(1));
    }

    #[test]
    fn figure_1c_split_then_forall() {
        // .forall(X).forall(Z).split(1, Y).fst.forall(Y): a single block.
        let e = fig1_grid()
            .forall(DimCompo::X)
            .unwrap()
            .forall(DimCompo::Z)
            .unwrap()
            .split(DimCompo::Y, Nat::lit(1), Side::Fst)
            .unwrap()
            .forall(DimCompo::Y)
            .unwrap();
        // All block dims are scheduled; each instance is one whole block.
        assert!(matches!(e.level(), ExecTy::GpuBlock(_)));
        assert_eq!(e.instance_size(), Some(4 * 4 * 4));
        // The Y forall level has extent 1 (narrowed by the split).
        let levels = e.forall_levels();
        assert_eq!(levels[2].extent.as_lit(), Some(1));
        assert_eq!(
            e.to_string(),
            "gpu.grid<XYZ<2,2,1>,XYZ<4,4,4>>.forall(X).forall(Z).split(1, Y).fst.forall(Y)"
        );
    }

    #[test]
    fn block_space_then_thread_space() {
        let g = ExecExpr::grid(Dim::x(32u64), Dim::x(64u64));
        let blocks = g.forall(DimCompo::X).unwrap();
        assert!(matches!(blocks.level(), ExecTy::GpuBlock(_)));
        assert_eq!(blocks.current_space(), Some(Space::Thread));
        let threads = blocks.forall(DimCompo::X).unwrap();
        assert!(matches!(threads.level(), ExecTy::GpuThread));
        assert_eq!(threads.current_space(), None);
        assert_eq!(threads.instance_size(), Some(1));
    }

    #[test]
    fn missing_dim_rejected() {
        let g = ExecExpr::grid(Dim::xy(64u64, 64u64), Dim::xy(32u64, 8u64));
        let err = g.forall(DimCompo::Z).unwrap_err();
        assert!(matches!(
            err,
            ExecError::MissingDim {
                dim: DimCompo::Z,
                space: Space::Block
            }
        ));
    }

    #[test]
    fn double_schedule_rejected() {
        let g = ExecExpr::grid(Dim::x(4u64), Dim::x(4u64));
        let b = g.forall(DimCompo::X).unwrap();
        let t = b.forall(DimCompo::X).unwrap();
        // Both spaces fully scheduled: one more forall is an error.
        assert_eq!(
            t.forall(DimCompo::X).unwrap_err(),
            ExecError::NothingToSchedule
        );
    }

    #[test]
    fn cpu_thread_has_no_hierarchy() {
        let c = ExecExpr::cpu_thread();
        assert_eq!(
            c.forall(DimCompo::X).unwrap_err(),
            ExecError::CpuHasNoHierarchy
        );
        assert_eq!(c.level(), ExecTy::CpuThread);
        assert_eq!(c.instance_size(), Some(1));
    }

    #[test]
    fn split_out_of_range_rejected() {
        let g = ExecExpr::grid(Dim::x(4u64), Dim::x(32u64));
        let b = g.forall(DimCompo::X).unwrap();
        let err = b.split(DimCompo::X, Nat::lit(64), Side::Fst).unwrap_err();
        assert!(matches!(err, ExecError::SplitOutOfRange { .. }));
    }

    #[test]
    fn split_narrows_extent() {
        let g = ExecExpr::grid(Dim::x(1u64), Dim::x(64u64));
        let b = g.forall(DimCompo::X).unwrap();
        let fst = b.split(DimCompo::X, Nat::lit(32), Side::Fst).unwrap();
        assert_eq!(
            fst.remaining_extent(DimCompo::X).unwrap().as_lit(),
            Some(32)
        );
        let snd = b.split(DimCompo::X, Nat::lit(24), Side::Snd).unwrap();
        assert_eq!(
            snd.remaining_extent(DimCompo::X).unwrap().as_lit(),
            Some(40)
        );
    }

    #[test]
    fn split_branches_are_disjoint() {
        let g = ExecExpr::grid(Dim::x(1u64), Dim::x(64u64));
        let b = g.forall(DimCompo::X).unwrap();
        let fst = b.split(DimCompo::X, Nat::lit(32), Side::Fst).unwrap();
        let snd = b.split(DimCompo::X, Nat::lit(32), Side::Snd).unwrap();
        assert!(fst.definitely_disjoint(&snd));
        assert!(snd.definitely_disjoint(&fst));
        // Different positions are not provably disjoint.
        let other = b.split(DimCompo::X, Nat::lit(16), Side::Snd).unwrap();
        assert!(!fst.definitely_disjoint(&other));
        // A resource is not disjoint from its own sub-resources.
        let sub = fst.forall(DimCompo::X).unwrap();
        assert!(!fst.definitely_disjoint(&sub));
        assert!(fst.is_prefix_of(&sub));
        assert!(!sub.is_prefix_of(&fst));
    }

    #[test]
    fn sync_legality_via_thread_space_split() {
        let g = ExecExpr::grid(Dim::x(2u64), Dim::x(64u64));
        let b = g.forall(DimCompo::X).unwrap();
        let t = b.forall(DimCompo::X).unwrap();
        assert!(!t.thread_space_has_split());
        // The paper's Section 2.2 example: split(X) block at 32 { sync }.
        let branch = b.split(DimCompo::X, Nat::lit(32), Side::Fst).unwrap();
        assert!(branch.thread_space_has_split());
        let branch_threads = branch.forall(DimCompo::X).unwrap();
        assert!(branch_threads.thread_space_has_split());
        // A *block-space* split does not endanger barriers.
        let block_split = g.split(DimCompo::X, Nat::lit(1), Side::Fst).unwrap();
        assert!(!block_split.thread_space_has_split());
    }

    #[test]
    fn levels_beyond_owner() {
        let g = ExecExpr::grid(Dim::x(4u64), Dim::x(32u64));
        let b = g.forall(DimCompo::X).unwrap();
        let t = b.forall(DimCompo::X).unwrap();
        // Owned by the grid: both levels must be covered.
        assert_eq!(t.levels_beyond(&g).unwrap().len(), 2);
        // Owned by the block: only the thread level.
        let lv = t.levels_beyond(&b).unwrap();
        assert_eq!(lv.len(), 1);
        assert_eq!(lv[0].space, Space::Thread);
        assert_eq!(lv[0].extent.as_lit(), Some(32));
        // Not a prefix: no answer.
        let other = g.split(DimCompo::X, Nat::lit(2), Side::Fst).unwrap();
        assert!(t.levels_beyond(&other).is_none());
    }

    #[test]
    fn two_dim_scheduling_order() {
        // sched(Y,X) over blocks XY<64,64>: forall(Y) then forall(X).
        let g = ExecExpr::grid(Dim::xy(64u64, 64u64), Dim::xy(32u64, 8u64));
        let b = g.forall(DimCompo::Y).unwrap().forall(DimCompo::X).unwrap();
        let levels = b.forall_levels();
        assert_eq!(levels[0].dim, DimCompo::Y);
        assert_eq!(levels[0].extent.as_lit(), Some(64));
        assert_eq!(levels[1].dim, DimCompo::X);
        assert!(matches!(b.level(), ExecTy::GpuBlock(_)));
        let t = b.forall(DimCompo::Y).unwrap().forall(DimCompo::X).unwrap();
        let tl = t.forall_levels();
        assert_eq!(tl.len(), 4);
        assert_eq!(tl[2].space, Space::Thread);
        assert_eq!(tl[2].extent.as_lit(), Some(8));
        assert_eq!(tl[3].extent.as_lit(), Some(32));
    }

    #[test]
    fn to_warps_factorizes_thread_space() {
        let b = ExecExpr::grid(Dim::x(4u64), Dim::x(512u64))
            .forall(DimCompo::X)
            .unwrap();
        let wb = b.to_warps().unwrap();
        assert!(wb.under_warps());
        assert_eq!(wb.current_space(), Some(Space::Warp));
        assert_eq!(wb.remaining_extent(DimCompo::X).unwrap().as_lit(), Some(16));
        let warps = wb.forall(DimCompo::X).unwrap();
        assert_eq!(warps.current_space(), Some(Space::Lane));
        assert!(matches!(warps.level(), ExecTy::GpuWarp));
        assert_eq!(warps.instance_size(), Some(32));
        let lanes = warps.forall(DimCompo::X).unwrap();
        assert!(matches!(lanes.level(), ExecTy::GpuThread));
        assert_eq!(lanes.instance_size(), Some(1));
        let levels = lanes.forall_levels();
        assert_eq!(levels.len(), 3);
        assert_eq!(levels[1].space, Space::Warp);
        assert_eq!(levels[1].extent.as_lit(), Some(16));
        assert_eq!(levels[2].space, Space::Lane);
        assert_eq!(levels[2].extent.as_lit(), Some(32));
        assert_eq!(
            lanes.to_string(),
            "gpu.grid<X<4>,X<512>>.forall(X).to_warps().forall(X).forall(X)"
        );
    }

    #[test]
    fn to_warps_rejects_bad_shapes() {
        // Block space not scheduled.
        let g = ExecExpr::grid(Dim::x(4u64), Dim::x(64u64));
        assert!(matches!(g.to_warps(), Err(ExecError::BadToWarps(_))));
        // 2-D thread space.
        let b2 = ExecExpr::grid(Dim::x(1u64), Dim::xy(32u64, 8u64))
            .forall(DimCompo::X)
            .unwrap();
        assert!(matches!(b2.to_warps(), Err(ExecError::BadToWarps(_))));
        // Extent not a multiple of 32.
        let b3 = ExecExpr::grid(Dim::x(1u64), Dim::x(48u64))
            .forall(DimCompo::X)
            .unwrap();
        assert!(matches!(b3.to_warps(), Err(ExecError::BadToWarps(_))));
        // Thread space already touched by a split.
        let b4 = ExecExpr::grid(Dim::x(1u64), Dim::x(64u64))
            .forall(DimCompo::X)
            .unwrap()
            .split(DimCompo::X, Nat::lit(32), Side::Fst)
            .unwrap();
        assert!(matches!(b4.to_warps(), Err(ExecError::BadToWarps(_))));
        // Twice.
        let wb = ExecExpr::grid(Dim::x(1u64), Dim::x(64u64))
            .forall(DimCompo::X)
            .unwrap()
            .to_warps()
            .unwrap();
        assert!(matches!(wb.to_warps(), Err(ExecError::BadToWarps(_))));
    }

    #[test]
    fn warp_splits_narrow_and_block_barrier_rules_apply() {
        let wb = ExecExpr::grid(Dim::x(1u64), Dim::x(128u64))
            .forall(DimCompo::X)
            .unwrap()
            .to_warps()
            .unwrap();
        // Split warp space: first warp only.
        let w0 = wb.split(DimCompo::X, Nat::lit(1), Side::Fst).unwrap();
        assert_eq!(w0.remaining_extent(DimCompo::X).unwrap().as_lit(), Some(1));
        assert!(w0.thread_space_has_split(), "warp split restricts threads");
        assert!(!w0.lane_space_has_split());
        // Schedule warp then split lanes: a lane-space split cuts warps.
        let lanes_split = wb
            .forall(DimCompo::X)
            .unwrap()
            .split(DimCompo::X, Nat::lit(1), Side::Fst)
            .unwrap();
        assert!(lanes_split.lane_space_has_split());
        // Disjointness through warp-space splits.
        let snd = wb.split(DimCompo::X, Nat::lit(1), Side::Snd).unwrap();
        assert!(w0.definitely_disjoint(&snd));
    }

    #[test]
    fn same_up_to_nat_normalization() {
        let a = ExecExpr::grid(Dim::x(Nat::var("n") * Nat::lit(1)), Dim::x(32u64));
        let b = ExecExpr::grid(Dim::x(Nat::var("n")), Dim::x(32u64));
        assert!(a.same(&b));
    }
}
