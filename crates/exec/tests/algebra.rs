//! Property tests on the execution-resource algebra: the structural
//! relations the borrow checker relies on must behave like the set
//! relations they model.

use descend_ast::ty::{Dim, DimCompo};
use descend_ast::Nat;
use descend_exec::{ExecExpr, Side};
use proptest::prelude::*;

/// A random well-formed refinement of a 2x2 grid of 8x4 threads.
fn arb_exec() -> impl Strategy<Value = ExecExpr> {
    proptest::collection::vec((0u8..4, 0u64..8, proptest::bool::ANY), 0..6).prop_map(|ops| {
        let mut e = ExecExpr::grid(Dim::xy(2u64, 2u64), Dim::xy(8u64, 4u64));
        for (kind, pos, side) in ops {
            let dim = if kind % 2 == 0 {
                DimCompo::X
            } else {
                DimCompo::Y
            };
            match kind {
                0 | 1 => {
                    if let Ok(next) = e.forall(dim) {
                        e = next;
                    }
                }
                _ => {
                    let side = if side { Side::Fst } else { Side::Snd };
                    if let Some(extent) = e.remaining_extent(dim).and_then(|n| n.as_lit()) {
                        if extent > 1 {
                            let p = 1 + pos % (extent - 1);
                            if let Ok(next) = e.split(dim, Nat::lit(p), side) {
                                e = next;
                            }
                        }
                    }
                }
            }
        }
        e
    })
}

proptest! {
    /// Disjointness is irreflexive and symmetric.
    #[test]
    fn disjointness_is_symmetric(a in arb_exec(), b in arb_exec()) {
        prop_assert!(!a.definitely_disjoint(&a));
        prop_assert_eq!(a.definitely_disjoint(&b), b.definitely_disjoint(&a));
    }

    /// The prefix relation is reflexive and transitive, and prefixes are
    /// never disjoint from their extensions.
    #[test]
    fn prefix_relation_laws(a in arb_exec()) {
        prop_assert!(a.is_prefix_of(&a));
        if let Ok(ext) = a.forall(DimCompo::X) {
            prop_assert!(a.is_prefix_of(&ext));
            prop_assert!(!a.definitely_disjoint(&ext));
            prop_assert!(!ext.definitely_disjoint(&a));
        }
    }

    /// Splitting any resource yields disjoint siblings whose instance
    /// sizes partition the parent's.
    #[test]
    fn split_partitions(a in arb_exec(), pos_seed in 1u64..8) {
        for dim in [DimCompo::X, DimCompo::Y] {
            let Some(extent) = a.remaining_extent(dim).and_then(|n| n.as_lit()) else {
                continue;
            };
            if extent <= 1 {
                continue;
            }
            let p = 1 + pos_seed % (extent - 1);
            let fst = a.split(dim, Nat::lit(p), Side::Fst).unwrap();
            let snd = a.split(dim, Nat::lit(p), Side::Snd).unwrap();
            prop_assert!(fst.definitely_disjoint(&snd));
            let (sa, sf, ss) = (
                a.instance_size().unwrap(),
                fst.instance_size().unwrap(),
                snd.instance_size().unwrap(),
            );
            prop_assert_eq!(sa, sf + ss, "split must partition the executors");
        }
    }

    /// Forall levels beyond a prefix plus levels of the prefix equal the
    /// levels of the whole.
    #[test]
    fn levels_beyond_is_complement(a in arb_exec()) {
        if let Ok(ext) = a.forall(DimCompo::Y) {
            let total = ext.forall_levels().len();
            let beyond = ext.levels_beyond(&a).unwrap().len();
            let own = a.forall_levels().len();
            prop_assert_eq!(total, beyond + own);
        }
    }

    /// `same` is an equivalence compatible with display.
    #[test]
    fn same_matches_display(a in arb_exec(), b in arb_exec()) {
        prop_assert!(a.same(&a));
        if a.same(&b) {
            prop_assert_eq!(a.to_string(), b.to_string());
        }
    }
}
