//! Code generation: the shared lowering from elaborated kernels to the
//! simulator IR.
//!
//! The paper's Section 5 describes the translation: `sched` dissolves
//! into the SPMD kernel model (the bound execution-resource variables
//! become `blockIdx`/`threadIdx`), selects and views compile into raw
//! index arithmetic by the reverse-order transformation implemented in
//! [`descend_places::lower_scalar_access`], `split` becomes a coordinate
//! condition, and `sync` becomes a barrier.
//!
//! This crate owns the *semantic* half of that translation — the
//! [`kernel_to_ir`] lowering the simulator executes and the
//! [`ir_gen::idx_to_expr`] index conversion. The *textual* half (CUDA
//! C++, OpenCL C, WGSL) lives downstream in `descend_backends`, whose
//! emitters render these same lowered index expressions, so every
//! target's text and the simulated kernel are renderings of one
//! lowering.

#![deny(missing_docs)]

pub mod ir_gen;

pub use ir_gen::{kernel_to_ir, CodegenError};

use descend_typeck::MonoKernel;

/// Convenience: lowers every kernel of a checked program to IR.
///
/// # Errors
///
/// Propagates the first lowering failure (see [`CodegenError`]).
pub fn all_kernels_to_ir(kernels: &[MonoKernel]) -> Result<Vec<gpu_sim::KernelIr>, CodegenError> {
    kernels.iter().map(kernel_to_ir).collect()
}
