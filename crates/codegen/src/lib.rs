//! Code generation: from elaborated kernels to the simulator IR and to
//! CUDA C++ source text.
//!
//! The paper's Section 5 describes the translation: `sched` dissolves
//! into the SPMD kernel model (the bound execution-resource variables
//! become `blockIdx`/`threadIdx`), selects and views compile into raw
//! index arithmetic by the reverse-order transformation implemented in
//! [`descend_places::lower_scalar_access`], `split` becomes a coordinate
//! condition, and `sync` becomes `__syncthreads()`.
//!
//! Both backends consume the same [`MonoKernel`]s, so the CUDA text and
//! the simulated kernel are two renderings of one lowering.

pub mod cuda;
pub mod ir_gen;

pub use cuda::{host_fn_to_cuda, kernel_to_cuda, program_to_cuda};
pub use ir_gen::{kernel_to_ir, CodegenError};

use descend_typeck::MonoKernel;

/// Convenience: lowers every kernel of a checked program to IR.
///
/// # Errors
///
/// Propagates the first lowering failure (see [`CodegenError`]).
pub fn all_kernels_to_ir(kernels: &[MonoKernel]) -> Result<Vec<gpu_sim::KernelIr>, CodegenError> {
    kernels.iter().map(kernel_to_ir).collect()
}
