//! CUDA C++ source emission.
//!
//! Produces the text a real Descend compiler would hand to `nvcc`. The
//! output is golden-tested against the paper's benchmark kernels; we
//! cannot run it (no NVIDIA toolchain in this reproduction — see
//! DESIGN.md), but its index expressions are byte-for-byte the ones the
//! simulator executes, via the shared lowering.

use crate::ir_gen::{idx_to_expr, CodegenError};
use descend_ast::term::{BinOp, UnOp};
use descend_ast::ty::DimCompo;
use descend_exec::Space;
use descend_places::lower_scalar_access;
use descend_typeck::{
    CheckedProgram, ElabExpr, ElabStmt, HostStmt, MemKind, MonoKernel, ScalarKind,
};
use std::fmt::Write as _;

fn cuda_ty(k: ScalarKind) -> &'static str {
    k.cuda_name()
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn coord_name(space: Space, dim: DimCompo) -> &'static str {
    match (space, dim) {
        (Space::Block, DimCompo::X) => "blockIdx.x",
        (Space::Block, DimCompo::Y) => "blockIdx.y",
        (Space::Block, DimCompo::Z) => "blockIdx.z",
        (Space::Thread, DimCompo::X) => "threadIdx.x",
        (Space::Thread, DimCompo::Y) => "threadIdx.y",
        (Space::Thread, DimCompo::Z) => "threadIdx.z",
    }
}

/// Renders an IR expression as C++ (used for the index expressions so the
/// CUDA text matches the simulated lowering exactly).
fn ir_expr_to_cpp(e: &gpu_sim::ir::Expr, k: &MonoKernel, out: &mut String) {
    use gpu_sim::ir::{Axis, Expr};
    match e {
        Expr::LitI(v) => {
            let _ = write!(out, "{v}");
        }
        Expr::LitF(v) => {
            let _ = write!(out, "{v:?}");
        }
        Expr::LitB(v) => {
            let _ = write!(out, "{v}");
        }
        Expr::BlockIdx(a) => {
            let _ = write!(out, "blockIdx.{}", axis_name(*a));
        }
        Expr::ThreadIdx(a) => {
            let _ = write!(out, "threadIdx.{}", axis_name(*a));
        }
        Expr::BlockDim(a) => {
            let _ = write!(out, "blockDim.{}", axis_name(*a));
        }
        Expr::GridDim(a) => {
            let _ = write!(out, "gridDim.{}", axis_name(*a));
        }
        Expr::Local(i) => {
            let _ = write!(out, "l{i}");
        }
        Expr::LoadGlobal { buf, idx } => {
            let _ = write!(out, "{}[", k.params[*buf].name);
            ir_expr_to_cpp(idx, k, out);
            out.push(']');
        }
        Expr::LoadShared { buf, idx } => {
            let _ = write!(out, "{}[", k.shared[*buf].name);
            ir_expr_to_cpp(idx, k, out);
            out.push(']');
        }
        Expr::Bin(op, a, b) => {
            out.push('(');
            ir_expr_to_cpp(a, k, out);
            let _ = write!(out, " {} ", ir_binop(*op));
            ir_expr_to_cpp(b, k, out);
            out.push(')');
        }
        Expr::Un(op, a) => {
            out.push_str(match op {
                gpu_sim::ir::UnOp::Neg => "-",
                gpu_sim::ir::UnOp::Not => "!",
            });
            out.push('(');
            ir_expr_to_cpp(a, k, out);
            out.push(')');
        }
    }

    fn axis_name(a: Axis) -> &'static str {
        match a {
            Axis::X => "x",
            Axis::Y => "y",
            Axis::Z => "z",
        }
    }

    fn ir_binop(op: gpu_sim::ir::BinOp) -> &'static str {
        use gpu_sim::ir::BinOp::*;
        match op {
            Add => "+",
            Sub => "-",
            Mul => "*",
            Div => "/",
            Mod => "%",
            Lt => "<",
            Le => "<=",
            Gt => ">",
            Ge => ">=",
            Eq => "==",
            Ne => "!=",
            And => "&&",
            Or => "||",
            Min => "min",
            Max => "max",
        }
    }
}

struct CudaCx<'k> {
    kernel: &'k MonoKernel,
    /// Rendered name per live local (uniquified on rebinding).
    local_names: std::collections::HashMap<String, String>,
    decl_counter: usize,
}

impl CudaCx<'_> {
    fn expr(&self, e: &ElabExpr, out: &mut String) -> Result<(), CodegenError> {
        match e {
            ElabExpr::Lit(kind, v) => match kind {
                ScalarKind::F64 => {
                    let _ = write!(out, "{v:?}");
                }
                ScalarKind::F32 => {
                    let _ = write!(out, "{v:?}f");
                }
                ScalarKind::I32 => {
                    let _ = write!(out, "{}", *v as i64);
                }
                ScalarKind::Bool => {
                    let _ = write!(out, "{}", *v != 0.0);
                }
            },
            ElabExpr::Local(name) => {
                let n = self
                    .local_names
                    .get(name)
                    .ok_or_else(|| CodegenError::UnknownLocal(name.clone()))?;
                out.push_str(n);
            }
            ElabExpr::Load(a) => {
                self.access(a, out)?;
            }
            ElabExpr::Binary(op, x, y) => {
                out.push('(');
                self.expr(x, out)?;
                let _ = write!(out, " {} ", binop_cpp(*op));
                self.expr(y, out)?;
                out.push(')');
            }
            ElabExpr::Unary(op, x) => {
                out.push_str(match op {
                    UnOp::Neg => "-",
                    UnOp::Not => "!",
                });
                out.push('(');
                self.expr(x, out)?;
                out.push(')');
            }
        }
        Ok(())
    }

    fn access(&self, a: &descend_typeck::ElabAccess, out: &mut String) -> Result<(), CodegenError> {
        let name = match a.mem {
            MemKind::GlobalParam(i) => &self.kernel.params[i].name,
            MemKind::Shared(i) => &self.kernel.shared[i].name,
        };
        let idx = lower_scalar_access(&a.path, &a.root_dims)
            .map_err(|e| CodegenError::Lowering(e.to_string()))?;
        let idx = idx_to_expr(&idx)?;
        let _ = write!(out, "{name}[");
        ir_expr_to_cpp(&idx, self.kernel, out);
        out.push(']');
        Ok(())
    }

    fn stmts(
        &mut self,
        body: &[ElabStmt],
        out: &mut String,
        level: usize,
    ) -> Result<(), CodegenError> {
        for s in body {
            match s {
                ElabStmt::Local { name, elem, init } => {
                    let rendered = if self.local_names.contains_key(name) {
                        self.decl_counter += 1;
                        format!("{name}_{}", self.decl_counter)
                    } else {
                        name.clone()
                    };
                    indent(out, level);
                    let _ = write!(out, "{} {} = ", cuda_ty(*elem), rendered);
                    self.local_names.insert(name.clone(), rendered);
                    self.expr(init, out)?;
                    out.push_str(";\n");
                }
                ElabStmt::AssignLocal { name, value } => {
                    indent(out, level);
                    let n = self
                        .local_names
                        .get(name)
                        .ok_or_else(|| CodegenError::UnknownLocal(name.clone()))?
                        .clone();
                    let _ = write!(out, "{n} = ");
                    self.expr(value, out)?;
                    out.push_str(";\n");
                }
                ElabStmt::Store { access, value } => {
                    indent(out, level);
                    self.access(access, out)?;
                    out.push_str(" = ");
                    self.expr(value, out)?;
                    out.push_str(";\n");
                }
                ElabStmt::Split {
                    space,
                    dim,
                    threshold,
                    fst,
                    snd,
                } => {
                    indent(out, level);
                    let _ = writeln!(out, "if ({} < {threshold}) {{", coord_name(*space, *dim));
                    self.stmts(fst, out, level + 1)?;
                    indent(out, level);
                    if snd.is_empty() {
                        out.push_str("}\n");
                    } else {
                        out.push_str("} else {\n");
                        self.stmts(snd, out, level + 1)?;
                        indent(out, level);
                        out.push_str("}\n");
                    }
                }
                ElabStmt::Sync => {
                    indent(out, level);
                    out.push_str("__syncthreads();\n");
                }
            }
        }
        Ok(())
    }
}

fn binop_cpp(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Mod => "%",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::And => "&&",
        BinOp::Or => "||",
    }
}

/// Emits CUDA C++ for one kernel.
///
/// # Errors
///
/// Propagates lowering failures (see [`CodegenError`]).
pub fn kernel_to_cuda(k: &MonoKernel) -> Result<String, CodegenError> {
    let mut out = String::new();
    let _ = write!(out, "__global__ void {}(", k.name);
    for (i, p) in k.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        if p.uniq {
            let _ = write!(out, "{}* {}", cuda_ty(p.elem), p.name);
        } else {
            let _ = write!(out, "const {}* {}", cuda_ty(p.elem), p.name);
        }
    }
    out.push_str(") {\n");
    for s in &k.shared {
        indent(&mut out, 1);
        let total: u64 = s.dims.iter().product();
        let _ = writeln!(out, "__shared__ {} {}[{}];", cuda_ty(s.elem), s.name, total);
    }
    let mut cx = CudaCx {
        kernel: k,
        local_names: std::collections::HashMap::new(),
        decl_counter: 0,
    };
    cx.stmts(&k.body, &mut out, 1)?;
    out.push_str("}\n");
    Ok(out)
}

/// Emits the host-side C++ for one host function.
///
/// # Errors
///
/// Never fails today; returns `Result` for symmetry with the kernels.
pub fn host_fn_to_cuda(
    name: &str,
    stmts: &[HostStmt],
    kernels: &[MonoKernel],
) -> Result<String, CodegenError> {
    let mut out = String::new();
    let _ = writeln!(out, "void {name}() {{");
    // Track element type and length per variable for sizes.
    let mut sizes: std::collections::HashMap<&str, (ScalarKind, u64)> =
        std::collections::HashMap::new();
    for s in stmts {
        indent(&mut out, 1);
        match s {
            HostStmt::AllocCpu { name, elem, len } => {
                sizes.insert(name, (*elem, *len));
                let t = cuda_ty(*elem);
                let _ = writeln!(out, "{t}* {name} = ({t}*)calloc({len}, sizeof({t}));");
            }
            HostStmt::AllocGpu { name, elem, len } => {
                sizes.insert(name, (*elem, *len));
                let t = cuda_ty(*elem);
                let _ = writeln!(
                    out,
                    "{t}* {name}; cudaMalloc(&{name}, {len} * sizeof({t})); cudaMemset({name}, 0, {len} * sizeof({t}));"
                );
            }
            HostStmt::AllocGpuCopy { name, src } => {
                let (elem, len) = sizes
                    .get(src.as_str())
                    .copied()
                    .unwrap_or((ScalarKind::F64, 0));
                sizes.insert(name, (elem, len));
                let t = cuda_ty(elem);
                let _ = writeln!(
                    out,
                    "{t}* {name}; cudaMalloc(&{name}, {len} * sizeof({t})); cudaMemcpy({name}, {src}, {len} * sizeof({t}), cudaMemcpyHostToDevice);"
                );
            }
            HostStmt::CopyToHost { dst, src } => {
                let (elem, len) = sizes
                    .get(dst.as_str())
                    .copied()
                    .unwrap_or((ScalarKind::F64, 0));
                let t = cuda_ty(elem);
                let _ = writeln!(
                    out,
                    "cudaMemcpy({dst}, {src}, {len} * sizeof({t}), cudaMemcpyDeviceToHost);"
                );
            }
            HostStmt::CopyToGpu { dst, src } => {
                let (elem, len) = sizes
                    .get(dst.as_str())
                    .copied()
                    .unwrap_or((ScalarKind::F64, 0));
                let t = cuda_ty(elem);
                let _ = writeln!(
                    out,
                    "cudaMemcpy({dst}, {src}, {len} * sizeof({t}), cudaMemcpyHostToDevice);"
                );
            }
            HostStmt::Launch { kernel, args } => {
                let k = &kernels[*kernel];
                let _ = writeln!(
                    out,
                    "{}<<<dim3({}, {}, {}), dim3({}, {}, {})>>>({});",
                    k.name,
                    k.grid_dim[0],
                    k.grid_dim[1],
                    k.grid_dim[2],
                    k.block_dim[0],
                    k.block_dim[1],
                    k.block_dim[2],
                    args.join(", ")
                );
            }
        }
    }
    out.push_str("}\n");
    Ok(out)
}

/// Emits a complete CUDA C++ translation unit: all kernels followed by
/// all host functions.
///
/// # Errors
///
/// Propagates lowering failures.
pub fn program_to_cuda(checked: &CheckedProgram) -> Result<String, CodegenError> {
    let mut out = String::from("#include <cuda_runtime.h>\n#include <cstdlib>\n\n");
    for k in &checked.kernels {
        out.push_str(&kernel_to_cuda(k)?);
        out.push('\n');
    }
    for (name, stmts) in &checked.host_fns {
        out.push_str(&host_fn_to_cuda(name, stmts, &checked.kernels)?);
        out.push('\n');
    }
    Ok(out)
}
