//! Lowering of elaborated kernels to the simulator IR.

use descend_ast::term::{AtomicOp as AstAtomicOp, BinOp as AstBinOp, ShflKind, UnOp as AstUnOp};
use descend_ast::ty::DimCompo;
use descend_exec::{Space, WARP_SIZE};
use descend_places::{lower_scalar_access, Coord, IdxExpr, DYN_IDX};
use descend_typeck::{ElabExpr, ElabStmt, MonoKernel, ScalarKind};
use gpu_sim::ir::{
    AtomicOp, Axis, BinOp, ElemTy, Expr, KernelIr, ParamDecl, SharedDecl, ShflOp, Stmt, UnOp,
};
use std::collections::HashMap;
use std::fmt;

/// Lowering errors. A type-checked kernel should always lower; failures
/// indicate elaboration bugs or intentionally unsupported constructs.
#[derive(Clone, Debug, PartialEq)]
pub enum CodegenError {
    /// A place path could not be lowered to a flat index.
    Lowering(String),
    /// An unresolved local variable.
    UnknownLocal(String),
    /// A loop variable survived unrolling (should not happen).
    ResidualVar(String),
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodegenError::Lowering(m) => write!(f, "cannot lower access: {m}"),
            CodegenError::UnknownLocal(n) => write!(f, "unknown local `{n}`"),
            CodegenError::ResidualVar(n) => {
                write!(f, "nat variable `{n}` survived unrolling")
            }
        }
    }
}

impl std::error::Error for CodegenError {}

/// Maps a scalar kind to the IR element type.
pub fn elem_ty(k: ScalarKind) -> ElemTy {
    match k {
        ScalarKind::F64 => ElemTy::F64,
        ScalarKind::F32 => ElemTy::F32,
        ScalarKind::I32 => ElemTy::I32,
        ScalarKind::U32 => ElemTy::U32,
        ScalarKind::Bool => ElemTy::Bool,
    }
}

/// Maps a surface atomic operation to the IR operation.
pub fn atomic_op(op: AstAtomicOp) -> AtomicOp {
    match op {
        AstAtomicOp::Add => AtomicOp::Add,
        AstAtomicOp::Min => AtomicOp::Min,
        AstAtomicOp::Max => AtomicOp::Max,
        AstAtomicOp::Exch => AtomicOp::Exch,
    }
}

fn axis(d: DimCompo) -> Axis {
    match d {
        DimCompo::X => Axis::X,
        DimCompo::Y => Axis::Y,
        DimCompo::Z => Axis::Z,
    }
}

/// Maps a surface shuffle kind to the IR operation.
pub fn shfl_op(kind: ShflKind) -> ShflOp {
    match kind {
        ShflKind::Down => ShflOp::Down,
        ShflKind::Xor => ShflOp::Xor,
    }
}

/// The raw coordinate expression of an execution space along a
/// dimension. Block and thread coordinates are hardware builtins; warp
/// and lane coordinates (from `to_warps`, which fixes the dimension to
/// `X`) derive from `threadIdx.x` by division and modulo — the one
/// spelling every backend and the simulator share.
pub fn space_coord_expr(space: Space, dim: DimCompo) -> Expr {
    match space {
        Space::Block => Expr::BlockIdx(axis(dim)),
        Space::Thread => Expr::ThreadIdx(axis(dim)),
        Space::Warp => Expr::bin(
            BinOp::Div,
            Expr::ThreadIdx(Axis::X),
            Expr::LitI(WARP_SIZE as i64),
        ),
        Space::Lane => Expr::bin(
            BinOp::Mod,
            Expr::ThreadIdx(Axis::X),
            Expr::LitI(WARP_SIZE as i64),
        ),
    }
}

/// Converts a lowered index expression to an IR expression.
pub fn idx_to_expr(idx: &IdxExpr) -> Result<Expr, CodegenError> {
    idx_to_expr_subst(idx, &|_| None)
}

/// Converts a lowered index expression to an IR expression, substituting
/// IR expressions for named index variables. The only producer of such
/// variables after unrolling is the atomic-scatter sentinel
/// [`DYN_IDX`], whose runtime index expression is spliced in here — the
/// rest of the address keeps flowing through the one shared lowering.
pub fn idx_to_expr_subst(
    idx: &IdxExpr,
    subst: &dyn Fn(&str) -> Option<Expr>,
) -> Result<Expr, CodegenError> {
    Ok(match idx {
        IdxExpr::Const(v) => Expr::LitI(*v as i64),
        IdxExpr::Var(x) => match subst(x) {
            Some(e) => e,
            None => return Err(CodegenError::ResidualVar(x.clone())),
        },
        IdxExpr::Coord(Coord { space, dim, offset }) => {
            let base = space_coord_expr(*space, *dim);
            match offset.as_lit() {
                Some(0) => base,
                Some(o) => Expr::sub(base, Expr::LitI(o as i64)),
                None => {
                    return Err(CodegenError::Lowering(format!(
                        "non-literal coordinate offset `{offset}`"
                    )))
                }
            }
        }
        IdxExpr::Add(a, b) => Expr::add(idx_to_expr_subst(a, subst)?, idx_to_expr_subst(b, subst)?),
        IdxExpr::Sub(a, b) => Expr::sub(idx_to_expr_subst(a, subst)?, idx_to_expr_subst(b, subst)?),
        IdxExpr::Mul(a, b) => Expr::mul(idx_to_expr_subst(a, subst)?, idx_to_expr_subst(b, subst)?),
    })
}

fn bin_op(op: AstBinOp) -> BinOp {
    match op {
        AstBinOp::Add => BinOp::Add,
        AstBinOp::Sub => BinOp::Sub,
        AstBinOp::Mul => BinOp::Mul,
        AstBinOp::Div => BinOp::Div,
        AstBinOp::Mod => BinOp::Mod,
        AstBinOp::Lt => BinOp::Lt,
        AstBinOp::Le => BinOp::Le,
        AstBinOp::Gt => BinOp::Gt,
        AstBinOp::Ge => BinOp::Ge,
        AstBinOp::Eq => BinOp::Eq,
        AstBinOp::Ne => BinOp::Ne,
        AstBinOp::And => BinOp::And,
        AstBinOp::Or => BinOp::Or,
    }
}

fn un_op(op: AstUnOp) -> UnOp {
    match op {
        AstUnOp::Neg => UnOp::Neg,
        AstUnOp::Not => UnOp::Not,
    }
}

/// Converts an elaborated (value) expression to an IR expression, given
/// a resolver from live local names to slots.
///
/// This is the single ElabExpr-to-IR conversion: the kernel lowering uses
/// it with its slot table, and the emission layer uses it (with a
/// mirrored table) to build atomic-scatter indices that match the
/// simulator IR node for node.
///
/// # Errors
///
/// [`CodegenError::UnknownLocal`] for unresolved names, plus lowering
/// failures from nested accesses.
pub fn elab_expr_to_ir(
    e: &ElabExpr,
    locals: &dyn Fn(&str) -> Option<usize>,
) -> Result<Expr, CodegenError> {
    Ok(match e {
        ElabExpr::Lit(kind, v) => match kind {
            ScalarKind::F64 | ScalarKind::F32 => Expr::LitF(*v),
            ScalarKind::I32 | ScalarKind::U32 => Expr::LitI(*v as i64),
            ScalarKind::Bool => Expr::LitB(*v != 0.0),
        },
        ElabExpr::Local(name) => {
            Expr::Local(locals(name).ok_or_else(|| CodegenError::UnknownLocal(name.clone()))?)
        }
        ElabExpr::Load(access) => {
            let idx = lower_scalar_access(&access.path, &access.root_dims)
                .map_err(|e| CodegenError::Lowering(e.to_string()))?;
            let idx = Box::new(idx_to_expr(&idx)?);
            match access.mem {
                descend_typeck::MemKind::GlobalParam(i) => Expr::LoadGlobal { buf: i, idx },
                descend_typeck::MemKind::Shared(i) => Expr::LoadShared { buf: i, idx },
            }
        }
        ElabExpr::Binary(op, a, b) => Expr::bin(
            bin_op(*op),
            elab_expr_to_ir(a, locals)?,
            elab_expr_to_ir(b, locals)?,
        ),
        ElabExpr::Unary(op, a) => Expr::Un(un_op(*op), Box::new(elab_expr_to_ir(a, locals)?)),
        // A shuffle is a warp-synchronous *instruction*, not a pure
        // expression: the kernel lowering extracts it into a dedicated
        // `Stmt::Shfl` (see `LowerCx::expr_in`); in pure-expression
        // positions (atomic-scatter indices) it cannot appear — the type
        // checker already rejects it there.
        ElabExpr::Shfl { .. } => {
            return Err(CodegenError::Lowering(
                "warp shuffles cannot appear in index positions".into(),
            ))
        }
    })
}

struct LowerCx {
    /// Live name -> local slot (rebinding allocates a fresh slot).
    locals: HashMap<String, usize>,
    next_slot: usize,
    /// Shuffle temporaries allocate from here — *after* every named
    /// local of the kernel — so the named-local slot assignment stays
    /// identical to the emission layer's `SlotMap` mirror regardless of
    /// how many shuffles the body contains.
    next_shfl_slot: usize,
}

impl LowerCx {
    /// Lowers a value expression, extracting every contained shuffle
    /// into a preceding [`Stmt::Shfl`] on a fresh temporary slot (depth
    /// first, so nested shuffles exchange in operand order).
    fn expr_in(&mut self, e: &ElabExpr, out: &mut Vec<Stmt>) -> Result<Expr, CodegenError> {
        Ok(match e {
            ElabExpr::Shfl { kind, value, delta } => {
                let value = self.expr_in(value, out)?;
                let slot = self.next_shfl_slot;
                self.next_shfl_slot += 1;
                out.push(Stmt::Shfl {
                    dst: slot,
                    op: shfl_op(*kind),
                    value,
                    delta: *delta,
                });
                Expr::Local(slot)
            }
            ElabExpr::Binary(op, a, b) => {
                Expr::bin(bin_op(*op), self.expr_in(a, out)?, self.expr_in(b, out)?)
            }
            ElabExpr::Unary(op, a) => Expr::Un(un_op(*op), Box::new(self.expr_in(a, out)?)),
            other => elab_expr_to_ir(other, &|n| self.locals.get(n).copied())?,
        })
    }

    fn stmts(&mut self, body: &[ElabStmt]) -> Result<Vec<Stmt>, CodegenError> {
        let mut out = Vec::new();
        for s in body {
            match s {
                ElabStmt::Local { name, init, .. } => {
                    let init = self.expr_in(init, &mut out)?;
                    let slot = self.next_slot;
                    self.next_slot += 1;
                    self.locals.insert(name.clone(), slot);
                    out.push(Stmt::SetLocal(slot, init));
                }
                ElabStmt::AssignLocal { name, value } => {
                    let value = self.expr_in(value, &mut out)?;
                    let slot = *self
                        .locals
                        .get(name)
                        .ok_or_else(|| CodegenError::UnknownLocal(name.clone()))?;
                    out.push(Stmt::SetLocal(slot, value));
                }
                ElabStmt::Store { access, value } => {
                    let value = self.expr_in(value, &mut out)?;
                    let idx = lower_scalar_access(&access.path, &access.root_dims)
                        .map_err(|e| CodegenError::Lowering(e.to_string()))?;
                    let idx = idx_to_expr(&idx)?;
                    out.push(match access.mem {
                        descend_typeck::MemKind::GlobalParam(i) => {
                            Stmt::StoreGlobal { buf: i, idx, value }
                        }
                        descend_typeck::MemKind::Shared(i) => {
                            Stmt::StoreShared { buf: i, idx, value }
                        }
                    });
                }
                ElabStmt::Split {
                    space,
                    dim,
                    threshold,
                    fst,
                    snd,
                } => {
                    let coord = space_coord_expr(*space, *dim);
                    let cond = Expr::lt(coord, Expr::LitI(*threshold as i64));
                    let then_s = self.stmts(fst)?;
                    let else_s = self.stmts(snd)?;
                    out.push(Stmt::If {
                        cond,
                        then_s,
                        else_s,
                    });
                }
                ElabStmt::Atomic {
                    op,
                    access,
                    index,
                    value,
                } => {
                    let value = self.expr_in(value, &mut out)?;
                    let raw = lower_scalar_access(&access.path, &access.root_dims)
                        .map_err(|e| CodegenError::Lowering(e.to_string()))?;
                    let idx = match index {
                        Some(ie) => {
                            let ie = self.expr_in(ie, &mut out)?;
                            idx_to_expr_subst(&raw, &|v| (v == DYN_IDX).then(|| ie.clone()))?
                        }
                        None => idx_to_expr(&raw)?,
                    };
                    let op = atomic_op(*op);
                    out.push(match access.mem {
                        descend_typeck::MemKind::GlobalParam(i) => Stmt::AtomicGlobal {
                            op,
                            buf: i,
                            idx,
                            value,
                        },
                        descend_typeck::MemKind::Shared(i) => Stmt::AtomicShared {
                            op,
                            buf: i,
                            idx,
                            value,
                        },
                    });
                }
                ElabStmt::Sync => out.push(Stmt::Barrier),
                ElabStmt::Src(span) => out.push(Stmt::Src(descend_trace::SrcSpan {
                    start: span.start,
                    end: span.end,
                })),
            }
        }
        Ok(out)
    }
}

/// Counts the named-local declarations in an elaborated body (both split
/// branches included) — the slot count the emission layer's `SlotMap`
/// will assign, and the base offset for shuffle temporaries.
fn count_local_decls(body: &[ElabStmt]) -> usize {
    let mut n = 0;
    for s in body {
        match s {
            ElabStmt::Local { .. } => n += 1,
            ElabStmt::Split { fst, snd, .. } => {
                n += count_local_decls(fst) + count_local_decls(snd);
            }
            _ => {}
        }
    }
    n
}

/// Lowers one elaborated kernel to the simulator IR.
///
/// # Errors
///
/// See [`CodegenError`]; does not occur for kernels produced by the type
/// checker from supported programs.
pub fn kernel_to_ir(k: &MonoKernel) -> Result<KernelIr, CodegenError> {
    let mut cx = LowerCx {
        locals: HashMap::new(),
        next_slot: 0,
        next_shfl_slot: count_local_decls(&k.body),
    };
    let body = cx.stmts(&k.body)?;
    Ok(KernelIr {
        name: k.name.clone(),
        params: k
            .params
            .iter()
            .map(|p| ParamDecl {
                elem: elem_ty(p.elem),
                len: p.dims.iter().product(),
                writable: p.uniq,
            })
            .collect(),
        shared: k
            .shared
            .iter()
            .map(|s| SharedDecl {
                elem: elem_ty(s.elem),
                len: s.dims.iter().product(),
            })
            .collect(),
        body,
    })
}
