//! Element-type coverage: f32 kernels flow through elaboration, IR
//! lowering, CUDA emission and simulation just like f64.

use descend_backends::cuda::kernel_to_cuda;
use descend_codegen::kernel_to_ir;
use descend_typeck::check_program;
use gpu_sim::ir::ElemTy;
use gpu_sim::{Gpu, LaunchConfig};

#[test]
fn f32_kernel_end_to_end() {
    let src = r#"
fn saxpyish(x: & gpu.global [f32; 128], y: &uniq gpu.global [f32; 128])
-[grid: gpu.grid<X<4>, X<32>>]-> () {
    sched(X) block in grid {
        sched(X) thread in block {
            (*y).group::<32>[[block]][[thread]] =
                (*y).group::<32>[[block]][[thread]]
                + (*x).group::<32>[[block]][[thread]] * 2.0f32;
        }
    }
}
"#;
    let prog = descend_parser::parse(src).unwrap();
    let checked = check_program(&prog).expect("f32 kernels type-check");
    let mk = &checked.kernels[0];
    let ir = kernel_to_ir(mk).unwrap();
    assert!(ir.params.iter().all(|p| p.elem == ElemTy::F32));
    let cuda = kernel_to_cuda(mk).unwrap();
    assert!(cuda.contains("__global__ void saxpyish(const float* x, float* y)"));
    assert!(cuda.contains("2.0f"));
    // Execute.
    let mut gpu = Gpu::new();
    let x: Vec<f64> = (0..128).map(|i| i as f64).collect();
    let y: Vec<f64> = vec![1.0; 128];
    let bx = gpu.alloc_zeroed(ElemTy::F32, 128);
    let by = gpu.alloc_zeroed(ElemTy::F32, 128);
    gpu.write_f64(bx, &x);
    gpu.write_f64(by, &y);
    let cfg = LaunchConfig {
        detect_races: true,
        ..LaunchConfig::default()
    };
    gpu.launch(&ir, [4, 1, 1], [32, 1, 1], &[bx, by], &cfg)
        .expect("clean run");
    let out = gpu.read_f64(by);
    for (i, v) in out.iter().enumerate() {
        assert_eq!(*v, 1.0 + (i as f64) * 2.0);
    }
}

#[test]
fn mixed_scalar_types_rejected() {
    // f32 array stored from an f64 expression must not type-check.
    let src = r#"
fn k(y: &uniq gpu.global [f32; 32]) -[grid: gpu.grid<X<1>, X<32>>]-> () {
    sched(X) block in grid {
        sched(X) thread in block {
            (*y)[[thread]] = 1.0;
        }
    }
}
"#;
    let prog = descend_parser::parse(src).unwrap();
    let err = check_program(&prog).unwrap_err();
    assert_eq!(err.kind, descend_typeck::ErrorKind::MismatchedTypes);
}

#[test]
fn f32_coalescing_uses_element_size() {
    // 32 consecutive f32 = 128 bytes = exactly one segment (vs 2 for f64).
    let src = r#"
fn fill(y: &uniq gpu.global [f32; 32]) -[grid: gpu.grid<X<1>, X<32>>]-> () {
    sched(X) block in grid {
        sched(X) thread in block {
            (*y)[[thread]] = 0.0f32;
        }
    }
}
"#;
    let prog = descend_parser::parse(src).unwrap();
    let checked = check_program(&prog).unwrap();
    let ir = kernel_to_ir(&checked.kernels[0]).unwrap();
    let mut gpu = Gpu::new();
    let b = gpu.alloc_zeroed(ElemTy::F32, 32);
    let stats = gpu
        .launch(&ir, [1, 1, 1], [32, 1, 1], &[b], &LaunchConfig::default())
        .unwrap();
    assert_eq!(stats.global_transactions, 1);
}
