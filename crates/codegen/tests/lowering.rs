//! End-to-end lowering tests: Descend source -> type checker -> IR and
//! CUDA text, with the kernels executed on the simulator and checked for
//! functional correctness against scalar references.

use descend_backends::cuda::kernel_to_cuda;
use descend_codegen::kernel_to_ir;
use descend_typeck::check_program;
use gpu_sim::{Gpu, LaunchConfig};

fn compile(src: &str) -> descend_typeck::CheckedProgram {
    let prog = descend_parser::parse(src).expect("parses");
    check_program(&prog).expect("type checks")
}

fn race_checked() -> LaunchConfig {
    LaunchConfig {
        detect_races: true,
        ..LaunchConfig::default()
    }
}

const SCALE_SRC: &str = r#"
fn scale_vec(v: &uniq gpu.global [f64; 1024]) -[grid: gpu.grid<X<32>, X<32>>]-> () {
    sched(X) block in grid {
        sched(X) thread in block {
            (*v).group::<32>[[block]][[thread]] =
                (*v).group::<32>[[block]][[thread]] * 3.0;
        }
    }
}
"#;

#[test]
fn scale_vec_runs_and_scales() {
    let checked = compile(SCALE_SRC);
    let ir = kernel_to_ir(&checked.kernels[0]).expect("lowers");
    let mut gpu = Gpu::new();
    let data: Vec<f64> = (0..1024).map(|i| i as f64).collect();
    let buf = gpu.alloc_f64(&data);
    let stats = gpu
        .launch(&ir, [32, 1, 1], [32, 1, 1], &[buf], &race_checked())
        .expect("no races, no divergence");
    let out = gpu.read_f64(buf);
    for (i, v) in out.iter().enumerate() {
        assert_eq!(*v, (i as f64) * 3.0, "element {i}");
    }
    assert!(stats.global_transactions > 0);
}

#[test]
fn scale_vec_cuda_text_shape() {
    let checked = compile(SCALE_SRC);
    let cuda = kernel_to_cuda(&checked.kernels[0]).expect("emits");
    assert!(cuda.contains("__global__ void scale_vec(double* v)"));
    // group::<32>[[block]][[thread]] lowers to block*32 + thread.
    assert!(
        cuda.contains("v[((blockIdx.x * 32) + threadIdx.x)]"),
        "unexpected CUDA text:\n{cuda}"
    );
}

const TRANSPOSE_SRC: &str = r#"
view tiles<h: nat, w: nat> = group::<h>.map(map(group::<w>)).map(transpose);

fn transpose(input: & gpu.global [[f64; 128]; 128],
             output: &uniq gpu.global [[f64; 128]; 128])
-[grid: gpu.grid<XY<4,4>, XY<32,8>>]-> () {
    sched(Y,X) block in grid {
        let tmp = alloc::<gpu.shared, [[f64; 32]; 32]>();
        sched(Y,X) thread in block {
            for i in [0..4] {
                tmp.group::<8>[i][[thread]] =
                    (*input).tiles::<32,32>.transpose[[block]].group::<8>[i][[thread]];
            }
            sync;
            for i in [0..4] {
                (*output).tiles::<32,32>[[block]].group::<8>[i][[thread]] =
                    tmp.transpose.group::<8>[i][[thread]];
            }
        }
    }
}
"#;

#[test]
fn transpose_is_functionally_correct() {
    let checked = compile(TRANSPOSE_SRC);
    let ir = kernel_to_ir(&checked.kernels[0]).expect("lowers");
    let n = 128usize;
    let data: Vec<f64> = (0..n * n).map(|i| i as f64).collect();
    let mut gpu = Gpu::new();
    let inp = gpu.alloc_f64(&data);
    let out = gpu.alloc_f64(&vec![0.0; n * n]);
    gpu.launch(&ir, [4, 4, 1], [32, 8, 1], &[inp, out], &race_checked())
        .expect("transpose is clean");
    let res = gpu.read_f64(out);
    for r in 0..n {
        for c in 0..n {
            assert_eq!(
                res[r * n + c],
                data[c * n + r],
                "transposed element ({r},{c})"
            );
        }
    }
}

#[test]
fn transpose_uses_shared_memory_and_barrier() {
    let checked = compile(TRANSPOSE_SRC);
    let ir = kernel_to_ir(&checked.kernels[0]).unwrap();
    assert_eq!(ir.shared.len(), 1);
    assert_eq!(ir.shared[0].len, 1024);
    let cuda = kernel_to_cuda(&checked.kernels[0]).unwrap();
    assert!(cuda.contains("__shared__ double tmp[1024];"));
    assert!(cuda.contains("__syncthreads();"));
}

#[test]
fn reduction_computes_block_sums() {
    let src = r#"
fn reduce(inp: & gpu.global [f64; 2048], out: &uniq gpu.global [f64; 4])
-[grid: gpu.grid<X<4>, X<512>>]-> () {
    sched(X) block in grid {
        let tmp = alloc::<gpu.shared, [f64; 512]>();
        sched(X) thread in block {
            tmp[[thread]] = (*inp).group::<512>[[block]][[thread]];
        }
        sync;
        for k in halving(256) {
            split(X) block at k {
                active => {
                    sched(X) t in active {
                        tmp.split::<k>.fst[[t]] = tmp.split::<k>.fst[[t]]
                            + tmp.split::<k>.snd.split::<k>.fst[[t]];
                    }
                },
                inactive => { }
            }
            sync;
        }
        split(X) block at 1 {
            first => {
                sched(X) t in first {
                    (*out)[[block]] = tmp.split::<1>.fst[[t]];
                }
            },
            rest => { }
        }
    }
}
"#;
    let checked = compile(src);
    let ir = kernel_to_ir(&checked.kernels[0]).unwrap();
    let data: Vec<f64> = (0..2048).map(|i| (i % 7) as f64).collect();
    let mut gpu = Gpu::new();
    let inp = gpu.alloc_f64(&data);
    let out = gpu.alloc_f64(&[0.0; 4]);
    gpu.launch(&ir, [4, 1, 1], [512, 1, 1], &[inp, out], &race_checked())
        .expect("reduction is clean");
    let sums = gpu.read_f64(out);
    for b in 0..4 {
        let expect: f64 = data[b * 512..(b + 1) * 512].iter().sum();
        assert_eq!(sums[b], expect, "block {b}");
    }
}

#[test]
fn matmul_matches_reference() {
    let src = r#"
view tiles<h: nat, w: nat> = group::<h>.map(map(group::<w>)).map(transpose);

fn matmul(a: & gpu.global [[f64; 64]; 64], b: & gpu.global [[f64; 64]; 64],
          c: &uniq gpu.global [[f64; 64]; 64])
-[grid: gpu.grid<XY<2,2>, XY<32,32>>]-> () {
    sched(Y,X) block in grid {
        let a_tile = alloc::<gpu.shared, [[f64; 32]; 32]>();
        let b_tile = alloc::<gpu.shared, [[f64; 32]; 32]>();
        sched(Y,X) thread in block {
            let mut acc = 0.0;
            for t in [0..2] {
                a_tile[[thread]] = (*a).tiles::<32,32>[[block.Y]][t][[thread]];
                b_tile[[thread]] = (*b).tiles::<32,32>[t][[block.X]][[thread]];
                sync;
                for k in [0..32] {
                    acc = acc + a_tile[[thread.Y]][k] * b_tile[k][[thread.X]];
                }
                sync;
            }
            (*c).tiles::<32,32>[[block]][[thread]] = acc;
        }
    }
}
"#;
    let checked = compile(src);
    let ir = kernel_to_ir(&checked.kernels[0]).unwrap();
    let n = 64usize;
    let a: Vec<f64> = (0..n * n).map(|i| ((i * 7) % 5) as f64).collect();
    let b: Vec<f64> = (0..n * n).map(|i| ((i * 3) % 4) as f64).collect();
    let mut gpu = Gpu::new();
    let da = gpu.alloc_f64(&a);
    let db = gpu.alloc_f64(&b);
    let dc = gpu.alloc_f64(&vec![0.0; n * n]);
    gpu.launch(&ir, [2, 2, 1], [32, 32, 1], &[da, db, dc], &race_checked())
        .expect("matmul is clean");
    let c = gpu.read_f64(dc);
    for r in 0..n {
        for col in 0..n {
            let mut expect = 0.0;
            for k in 0..n {
                expect += a[r * n + k] * b[k * n + col];
            }
            assert_eq!(c[r * n + col], expect, "element ({r},{col})");
        }
    }
}

#[test]
fn split_lowers_to_condition() {
    let src = r#"
fn k(v: &uniq gpu.global [f64; 64]) -[grid: gpu.grid<X<1>, X<64>>]-> () {
    sched(X) block in grid {
        let tmp = alloc::<gpu.shared, [f64; 64]>();
        split(X) block at 48 {
            low => {
                sched(X) t in low { tmp.split::<48>.fst[[t]] = 1.0; }
            },
            high => {
                sched(X) t in high { tmp.split::<48>.snd[[t]] = 2.0; }
            }
        }
        sync;
        sched(X) thread in block {
            (*v)[[thread]] = tmp[[thread]];
        }
    }
}
"#;
    let checked = compile(src);
    let cuda = kernel_to_cuda(&checked.kernels[0]).unwrap();
    assert!(
        cuda.contains("if (threadIdx.x < 48) {"),
        "split should become a coordinate condition:\n{cuda}"
    );
    // The snd half indexes with an offset-adjusted coordinate:
    // tmp[(threadIdx.x - 48) + 48] folds to tmp[threadIdx.x]; check
    // execution instead of text for the offset logic.
    let ir = kernel_to_ir(&checked.kernels[0]).unwrap();
    let mut gpu = Gpu::new();
    let buf = gpu.alloc_f64(&[0.0; 64]);
    gpu.launch(&ir, [1, 1, 1], [64, 1, 1], &[buf], &race_checked())
        .unwrap();
    let out = gpu.read_f64(buf);
    assert!(out[..48].iter().all(|v| *v == 1.0));
    assert!(out[48..].iter().all(|v| *v == 2.0));
}

#[test]
fn every_checked_kernel_is_race_free_dynamically() {
    // The static checker accepted these kernels; the dynamic detector
    // must agree (soundness spot-check).
    for src in [SCALE_SRC, TRANSPOSE_SRC] {
        let checked = compile(src);
        for mk in &checked.kernels {
            let ir = kernel_to_ir(mk).unwrap();
            let mut gpu = Gpu::new();
            let args: Vec<_> = ir
                .params
                .iter()
                .map(|p| gpu.alloc_f64(&vec![1.0; p.len as usize]))
                .collect();
            gpu.launch(&ir, mk.grid_dim, mk.block_dim, &args, &race_checked())
                .unwrap_or_else(|e| panic!("kernel {} raced: {e}", mk.name));
        }
    }
}
