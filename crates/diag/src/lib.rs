//! Diagnostics rendering.
//!
//! Renders compiler errors in the style of the paper's Section 2 examples:
//!
//! ```text
//! error: conflicting memory access
//!   --> 4:13
//!    |
//!  4 |             arr[[thread]] = arr.rev[[thread]];
//!    |             ^^^^^^^^^^^^^ cannot select memory because of
//!    |  a conflicting prior selection here
//!   --> 4:29
//!    |
//!  4 |             arr[[thread]] = arr.rev[[thread]];
//!    |                             ------------------
//! ```
//!
//! A [`Diagnostic`] carries a headline, a primary labelled span, and any
//! number of secondary labelled spans (rendered with dashes, like rustc's
//! secondary labels).

#![deny(missing_docs)]

use descend_ast::Span;
use std::fmt;

/// A labelled source span inside a diagnostic.
#[derive(Clone, Debug, PartialEq)]
pub struct Label {
    /// The span being pointed at.
    pub span: Span,
    /// The message attached to the span.
    pub message: String,
}

/// A structured compiler diagnostic.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    /// Headline, e.g. `conflicting memory access`.
    pub title: String,
    /// The primary label (rendered with carets `^^^`).
    pub primary: Label,
    /// Secondary labels (rendered with dashes `---`).
    pub secondary: Vec<Label>,
    /// Optional free-form help text.
    pub help: Option<String>,
}

impl Diagnostic {
    /// Creates a diagnostic with a primary label.
    pub fn new(title: impl Into<String>, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            title: title.into(),
            primary: Label {
                span,
                message: message.into(),
            },
            secondary: Vec::new(),
            help: None,
        }
    }

    /// Adds a secondary label.
    pub fn with_secondary(mut self, span: Span, message: impl Into<String>) -> Diagnostic {
        self.secondary.push(Label {
            span,
            message: message.into(),
        });
        self
    }

    /// Adds a help note.
    pub fn with_help(mut self, help: impl Into<String>) -> Diagnostic {
        self.help = Some(help.into());
        self
    }

    /// Renders the diagnostic against the source text.
    pub fn render(&self, source: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!("error: {}\n", self.title));
        render_label(&mut out, source, &self.primary, '^');
        for l in &self.secondary {
            render_label(&mut out, source, l, '-');
        }
        if let Some(h) = &self.help {
            out.push_str(&format!("  = help: {h}\n"));
        }
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "error: {} ({})", self.title, self.primary.message)
    }
}

/// Computes 1-based line/column of a byte offset.
fn line_col(source: &str, offset: u32) -> (usize, usize) {
    let offset = (offset as usize).min(source.len());
    let mut line = 1;
    let mut col = 1;
    for (i, c) in source.char_indices() {
        if i >= offset {
            break;
        }
        if c == '\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    (line, col)
}

fn render_label(out: &mut String, source: &str, label: &Label, marker: char) {
    let (line, col) = line_col(source, label.span.start);
    out.push_str(&format!("  --> {line}:{col}\n"));
    let line_text = source.lines().nth(line - 1).unwrap_or("");
    let gutter = format!("{line}");
    let pad = " ".repeat(gutter.len());
    out.push_str(&format!(" {pad} |\n"));
    out.push_str(&format!(" {gutter} | {line_text}\n"));
    let span_len = (label.span.len() as usize).max(1);
    // Clamp the marker run to the end of the line.
    let avail = line_text.chars().count().saturating_sub(col - 1).max(1);
    let run = span_len.min(avail);
    let markers: String = std::iter::repeat_n(marker, run).collect();
    out.push_str(&format!(
        " {pad} | {}{} {}\n",
        " ".repeat(col - 1),
        markers,
        label.message
    ));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_primary_caret() {
        let src = "let x = y;\nlet z = w;";
        let d = Diagnostic::new("mismatched types", Span::new(8, 9), "expected `i32`");
        let r = d.render(src);
        assert!(r.contains("error: mismatched types"));
        assert!(r.contains("--> 1:9"));
        assert!(r.contains("let x = y;"));
        assert!(r.contains("^ expected `i32`"));
    }

    #[test]
    fn renders_secondary_dashes() {
        let src = "a[[thread]] = a.rev[[thread]];";
        let d = Diagnostic::new(
            "conflicting memory access",
            Span::new(0, 11),
            "cannot select memory because of a conflicting prior selection here",
        )
        .with_secondary(Span::new(14, 29), "prior selection");
        let r = d.render(src);
        assert!(r.contains("^^^^^^^^^^^"));
        assert!(r.contains("---------------"));
        assert!(r.contains("prior selection"));
    }

    #[test]
    fn line_col_multiline() {
        let src = "ab\ncd\nef";
        assert_eq!(line_col(src, 0), (1, 1));
        assert_eq!(line_col(src, 3), (2, 1));
        assert_eq!(line_col(src, 7), (3, 2));
    }

    #[test]
    fn help_is_rendered() {
        let d = Diagnostic::new("barrier not allowed here", Span::new(0, 4), "`sync` here")
            .with_help("barriers must be reached by every thread of the block");
        let r = d.render("sync;");
        assert!(r.contains("= help: barriers"));
    }

    #[test]
    fn dummy_span_renders_without_panic() {
        let d = Diagnostic::new("oops", Span::DUMMY, "here");
        let r = d.render("");
        assert!(r.contains("error: oops"));
    }

    #[test]
    fn marker_clamped_to_line_end() {
        let src = "short";
        let d = Diagnostic::new("x", Span::new(0, 100), "m");
        let r = d.render(src);
        assert!(r.contains("^^^^^ m"));
    }
}
