//! Diagnostics rendering.
//!
//! Renders compiler errors in the style of the paper's Section 2 examples,
//! upgraded to rustc-grade output: a stable error code from the
//! [`registry`], line-numbered source snippets with a gutter, multi-line
//! span support, and `help:` suggestions with concrete fix text:
//!
//! ```text
//! error[E0102]: conflicting memory access
//!   --> 4:13
//!    |
//!  4 |             arr[[thread]] = arr.rev[[thread]];
//!    |             ^^^^^^^^^^^^^ cannot select memory because of
//!    |  a conflicting prior selection here
//!   --> 4:29
//!    |
//!  4 |             arr[[thread]] = arr.rev[[thread]];
//!    |                             ------------------
//! ```
//!
//! A [`Diagnostic`] carries an optional stable code, a headline, a primary
//! labelled span, any number of secondary labelled spans (rendered with
//! dashes, like rustc's secondary labels), and a list of help notes.
//!
//! The same diagnostic also renders to machine-readable JSON
//! ([`Diagnostic::to_json`], [`render_json`]; schema
//! `descend-diagnostics/1`, `schemas/diagnostics.schema.json`) for
//! `descendc check --json` and the compile server.

#![deny(missing_docs)]

pub mod registry;

use descend_ast::Span;
use std::fmt;

/// A labelled source span inside a diagnostic.
#[derive(Clone, Debug, PartialEq)]
pub struct Label {
    /// The span being pointed at.
    pub span: Span,
    /// The message attached to the span.
    pub message: String,
}

/// A structured compiler diagnostic.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    /// Stable error code (e.g. `E0104`) from the [`registry`], when the
    /// diagnostic was built through [`Diagnostic::coded`].
    pub code: Option<&'static str>,
    /// Headline, e.g. `conflicting memory access`.
    pub title: String,
    /// The primary label (rendered with carets `^^^`).
    pub primary: Label,
    /// Secondary labels (rendered with dashes `---`).
    pub secondary: Vec<Label>,
    /// Help notes, each rendered as a `= help:` line.
    pub help: Vec<String>,
}

impl Diagnostic {
    /// Creates an uncoded diagnostic with a primary label.
    pub fn new(title: impl Into<String>, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code: None,
            title: title.into(),
            primary: Label {
                span,
                message: message.into(),
            },
            secondary: Vec::new(),
            help: Vec::new(),
        }
    }

    /// Creates a diagnostic for a registered error code; the headline is
    /// the registry title, so every `E0xxx` renders one canonical
    /// headline everywhere.
    ///
    /// # Panics
    ///
    /// If `code` is not in the [`registry`] (a compiler bug).
    pub fn coded(code: &'static str, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code: Some(code),
            ..Diagnostic::new(registry::title(code), span, message)
        }
    }

    /// Adds a secondary label.
    pub fn with_secondary(mut self, span: Span, message: impl Into<String>) -> Diagnostic {
        self.secondary.push(Label {
            span,
            message: message.into(),
        });
        self
    }

    /// Adds a help note.
    pub fn with_help(mut self, help: impl Into<String>) -> Diagnostic {
        self.help.push(help.into());
        self
    }

    /// Renders the diagnostic against the source text.
    pub fn render(&self, source: &str) -> String {
        let mut out = String::new();
        match self.code {
            Some(c) => out.push_str(&format!("error[{c}]: {}\n", self.title)),
            None => out.push_str(&format!("error: {}\n", self.title)),
        }
        if self.primary.span.is_dummy() {
            // Span-less diagnostics (e.g. lowering failures that arise
            // from the elaborated form) carry their message as a note
            // instead of pointing at line 1:1.
            out.push_str(&format!("  = note: {}\n", self.primary.message));
        } else {
            render_label(&mut out, source, &self.primary, '^');
        }
        for l in &self.secondary {
            render_label(&mut out, source, l, '-');
        }
        for h in &self.help {
            out.push_str(&format!("  = help: {h}\n"));
        }
        out
    }

    /// Renders the diagnostic as one JSON object (no trailing newline),
    /// per the `descend-diagnostics/1` schema: stable `code` (or
    /// `null`), `severity`, `title`, primary `message`, every span with
    /// byte offsets and 1-based line/column, `help` notes, and the full
    /// human `rendered` text.
    pub fn to_json(&self, source: &str) -> String {
        let mut out = String::new();
        out.push('{');
        match self.code {
            Some(c) => out.push_str(&format!("\"code\":\"{c}\",")),
            None => out.push_str("\"code\":null,"),
        }
        out.push_str("\"severity\":\"error\",");
        out.push_str(&format!("\"title\":\"{}\",", json_escape(&self.title)));
        out.push_str(&format!(
            "\"message\":\"{}\",",
            json_escape(&self.primary.message)
        ));
        out.push_str("\"spans\":[");
        span_json(&mut out, source, &self.primary, true);
        for l in &self.secondary {
            out.push(',');
            span_json(&mut out, source, l, false);
        }
        out.push_str("],\"help\":[");
        for (i, h) in self.help.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\"", json_escape(h)));
        }
        out.push_str(&format!(
            "],\"rendered\":\"{}\"}}",
            json_escape(&self.render(source))
        ));
        out
    }
}

/// Renders a full `descend-diagnostics/1` document for `file` with the
/// given diagnostics (`ok` is true exactly when there are none). This is
/// the payload of `descendc check --json`, validated against
/// `schemas/diagnostics.schema.json`.
pub fn render_json(file: &str, source: &str, diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"descend-diagnostics/1\",\n");
    out.push_str(&format!("  \"file\": \"{}\",\n", json_escape(file)));
    out.push_str(&format!(
        "  \"ok\": {},\n",
        if diags.is_empty() { "true" } else { "false" }
    ));
    out.push_str("  \"diagnostics\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        out.push_str(&d.to_json(source));
    }
    if !diags.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn span_json(out: &mut String, source: &str, label: &Label, primary: bool) {
    let (line, col) = line_col(source, label.span.start);
    let (end_line, end_col) = line_col(source, label.span.end);
    out.push_str(&format!(
        "{{\"primary\":{primary},\"start\":{},\"end\":{},\"line\":{line},\"col\":{col},\
         \"end_line\":{end_line},\"end_col\":{end_col},\"label\":\"{}\"}}",
        label.span.start,
        label.span.end,
        json_escape(&label.message)
    ));
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.code {
            Some(c) => write!(f, "error[{c}]: {} ({})", self.title, self.primary.message),
            None => write!(f, "error: {} ({})", self.title, self.primary.message),
        }
    }
}

/// Computes the 1-based line/column of a byte offset.
pub fn line_col(source: &str, offset: u32) -> (usize, usize) {
    let offset = (offset as usize).min(source.len());
    let mut line = 1;
    let mut col = 1;
    for (i, c) in source.char_indices() {
        if i >= offset {
            break;
        }
        if c == '\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    (line, col)
}

fn render_label(out: &mut String, source: &str, label: &Label, marker: char) {
    let (line, col) = line_col(source, label.span.start);
    let (end_line, end_col) = line_col(source, label.span.end);
    if end_line > line {
        render_multiline_label(out, source, label, marker, (line, col), (end_line, end_col));
        return;
    }
    out.push_str(&format!("  --> {line}:{col}\n"));
    let line_text = source.lines().nth(line - 1).unwrap_or("");
    let gutter = format!("{line}");
    let pad = " ".repeat(gutter.len());
    out.push_str(&format!(" {pad} |\n"));
    out.push_str(&format!(" {gutter} | {line_text}\n"));
    let span_len = (label.span.len() as usize).max(1);
    // Clamp the marker run to the end of the line.
    let avail = line_text.chars().count().saturating_sub(col - 1).max(1);
    let run = span_len.min(avail);
    let markers: String = std::iter::repeat_n(marker, run).collect();
    out.push_str(&format!(
        " {pad} | {}{} {}\n",
        " ".repeat(col - 1),
        markers,
        label.message
    ));
}

/// Renders a label whose span crosses lines, rustc-style: the opening
/// line gets an `__^` underline running up to the start column, every
/// spanned line a `|` continuation bar, and the closing line a `|__^`
/// underline carrying the message. Runs of more than four lines elide
/// the middle with a `...` gutter row.
fn render_multiline_label(
    out: &mut String,
    source: &str,
    label: &Label,
    marker: char,
    (line, col): (usize, usize),
    (end_line, end_col): (usize, usize),
) {
    let lines: Vec<&str> = source.lines().collect();
    let text = |n: usize| lines.get(n - 1).copied().unwrap_or("");
    let pad = " ".repeat(format!("{end_line}").len());
    let gut = |n: usize| format!("{n:>width$}", width = pad.len());
    out.push_str(&format!("  --> {line}:{col}\n"));
    out.push_str(&format!(" {pad} |\n"));
    out.push_str(&format!(" {} |   {}\n", gut(line), text(line)));
    out.push_str(&format!(" {pad} |  {}{marker}\n", "_".repeat(col - 1)));
    let (head, tail) = if end_line - line > 3 {
        (line + 1..line + 2, end_line - 1..end_line)
    } else {
        #[allow(clippy::reversed_empty_ranges)]
        (line + 1..end_line, end_line..end_line)
    };
    for n in head {
        out.push_str(&format!(" {} | | {}\n", gut(n), text(n)));
    }
    if !tail.is_empty() {
        out.push_str(&format!(" {pad} | ...\n"));
        for n in tail {
            out.push_str(&format!(" {} | | {}\n", gut(n), text(n)));
        }
    }
    out.push_str(&format!(" {} | | {}\n", gut(end_line), text(end_line)));
    // The closing underline ends under the span's last character.
    let close = end_col.saturating_sub(1).max(1);
    out.push_str(&format!(
        " {pad} | |{}{marker} {}\n",
        "_".repeat(close),
        label.message
    ));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_primary_caret() {
        let src = "let x = y;\nlet z = w;";
        let d = Diagnostic::new("mismatched types", Span::new(8, 9), "expected `i32`");
        let r = d.render(src);
        assert!(r.contains("error: mismatched types"));
        assert!(r.contains("--> 1:9"));
        assert!(r.contains("let x = y;"));
        assert!(r.contains("^ expected `i32`"));
    }

    #[test]
    fn coded_header_and_registry_title() {
        let d = Diagnostic::coded("E0104", Span::new(0, 4), "`sync` under a split");
        let r = d.render("sync;");
        assert!(
            r.starts_with("error[E0104]: barrier not allowed here\n"),
            "{r}"
        );
        assert_eq!(
            d.to_string().split(" (").next().unwrap(),
            "error[E0104]: barrier not allowed here"
        );
    }

    #[test]
    fn renders_secondary_dashes() {
        let src = "a[[thread]] = a.rev[[thread]];";
        let d = Diagnostic::new(
            "conflicting memory access",
            Span::new(0, 11),
            "cannot select memory because of a conflicting prior selection here",
        )
        .with_secondary(Span::new(14, 29), "prior selection");
        let r = d.render(src);
        assert!(r.contains("^^^^^^^^^^^"));
        assert!(r.contains("---------------"));
        assert!(r.contains("prior selection"));
    }

    #[test]
    fn line_col_multiline() {
        let src = "ab\ncd\nef";
        assert_eq!(line_col(src, 0), (1, 1));
        assert_eq!(line_col(src, 3), (2, 1));
        assert_eq!(line_col(src, 7), (3, 2));
    }

    #[test]
    fn help_is_rendered() {
        let d = Diagnostic::new("barrier not allowed here", Span::new(0, 4), "`sync` here")
            .with_help("barriers must be reached by every thread of the block");
        let r = d.render("sync;");
        assert!(r.contains("= help: barriers"));
    }

    #[test]
    fn multiple_help_notes_render_in_order() {
        let d = Diagnostic::new("x", Span::new(0, 1), "m")
            .with_help("first")
            .with_help("second");
        let r = d.render("abc");
        let first = r.find("= help: first").unwrap();
        let second = r.find("= help: second").unwrap();
        assert!(first < second);
    }

    #[test]
    fn dummy_span_renders_note_without_snippet() {
        let d = Diagnostic::new("oops", Span::DUMMY, "here");
        let r = d.render("");
        assert_eq!(r, "error: oops\n  = note: here\n");
    }

    #[test]
    fn marker_clamped_to_line_end() {
        let src = "short";
        let d = Diagnostic::new("x", Span::new(0, 100), "m");
        let r = d.render(src);
        assert!(r.contains("^^^^^ m"));
    }

    #[test]
    fn multiline_span_renders_open_and_close_underlines() {
        let src = "let x = foo(\n    1,\n);";
        // Span covers `foo(` through `)` — lines 1..3.
        let d = Diagnostic::new("mismatched types", Span::new(8, 22), "expected `i32`");
        let r = d.render(src);
        assert_eq!(
            r,
            "error: mismatched types\n\
             \x20 --> 1:9\n\
             \x20  |\n\
             \x201 |   let x = foo(\n\
             \x20  |  ________^\n\
             \x202 | |     1,\n\
             \x203 | | );\n\
             \x20  | |__^ expected `i32`\n"
        );
    }

    #[test]
    fn long_multiline_span_elides_middle() {
        let src = "a(\n1,\n2,\n3,\n4,\n5)";
        let d = Diagnostic::new("x", Span::new(0, src.len() as u32), "m");
        let r = d.render(src);
        assert!(r.contains(" | ...\n"), "{r}");
        assert!(r.contains("1 |   a(\n"), "{r}");
        assert!(r.contains("6 | | 5)\n"), "{r}");
        assert!(!r.contains("3,"), "middle lines should be elided: {r}");
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd\te\r"), "a\\\"b\\\\c\\nd\\te\\r");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn to_json_carries_code_spans_and_help() {
        let src = "sync;";
        let d = Diagnostic::coded("E0104", Span::new(0, 4), "`sync` here")
            .with_secondary(Span::new(4, 5), "split here")
            .with_help("hoist the `sync`");
        let j = d.to_json(src);
        assert!(j.contains("\"code\":\"E0104\""), "{j}");
        assert!(j.contains("\"severity\":\"error\""));
        assert!(j.contains("\"title\":\"barrier not allowed here\""));
        assert!(j.contains("\"primary\":true,\"start\":0,\"end\":4,\"line\":1,\"col\":1"));
        assert!(j.contains("\"primary\":false,\"start\":4,\"end\":5"));
        assert!(j.contains("\"help\":[\"hoist the `sync`\"]"));
        assert!(j.contains("\"rendered\":\"error[E0104]"));
    }

    #[test]
    fn uncoded_to_json_has_null_code() {
        let d = Diagnostic::new("oops", Span::DUMMY, "m");
        assert!(d.to_json("").contains("\"code\":null"));
    }

    #[test]
    fn render_json_document_shape() {
        let src = "sync;";
        let d = Diagnostic::coded("E0104", Span::new(0, 4), "`sync` here");
        let doc = render_json("a.descend", src, std::slice::from_ref(&d));
        assert!(doc.contains("\"schema\": \"descend-diagnostics/1\""));
        assert!(doc.contains("\"file\": \"a.descend\""));
        assert!(doc.contains("\"ok\": false"));
        assert!(doc.ends_with("]\n}\n"));
        let empty = render_json("a.descend", src, &[]);
        assert!(empty.contains("\"ok\": true"));
        assert!(empty.contains("\"diagnostics\": []"));
    }
}
