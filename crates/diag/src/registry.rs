//! The stable error-code registry.
//!
//! Every diagnostic the pipeline emits carries a stable `E0xxx` code:
//!
//! - `E00xx` — lexical and syntax errors (`descend_parser`),
//! - `E01xx` — type system and extended borrow checker
//!   (`descend_typeck::ErrorKind`, one code per variant),
//! - `E02xx` — lowering/emission failures (`descend_codegen`,
//!   `descend_backends`).
//!
//! Codes are append-only: a code is never renumbered, reused, or given a
//! different meaning — tools and golden files may key on them forever.
//! Each entry carries the headline `title` (exactly the rendered
//! diagnostic's headline) and a one-paragraph `explanation` served by
//! `descendc explain E0xxx` and indexed in `docs/DIAGNOSTICS.md`.

/// One registry entry: a stable code, its headline, and the long-form
/// explanation `descendc explain` prints.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CodeInfo {
    /// The stable code, e.g. `"E0104"`.
    pub code: &'static str,
    /// The diagnostic headline, e.g. `"barrier not allowed here"`.
    pub title: &'static str,
    /// A one-paragraph explanation of what the error means and how to
    /// fix it.
    pub explanation: &'static str,
}

/// Lexical error: a character or literal outside the language.
pub const INVALID_TOKEN: &str = "E0001";
/// Syntax error: the token stream does not form a program.
pub const SYNTAX_ERROR: &str = "E0002";
/// Lowering or backend emission failed (no source construct to blame).
pub const LOWERING_FAILED: &str = "E0201";

/// Every registered code, in code order. The registry is the single
/// source of truth: `ErrorKind::code` in `descend_typeck` maps into it,
/// `descendc explain` reads it, and `docs/DIAGNOSTICS.md` must index all
/// of it (enforced by `tests/doc_coverage.rs`).
pub const REGISTRY: &[CodeInfo] = &[
    CodeInfo {
        code: INVALID_TOKEN,
        title: "invalid token",
        explanation: "The lexer hit a character or malformed literal that is not part of \
                      the Descend language (for example a stray `#`, an unterminated \
                      comment, or a numeric literal that does not fit its type). The \
                      diagnostic points at the first offending byte. Remove or fix the \
                      token; `docs/LANGUAGE.md` lists the full surface syntax.",
    },
    CodeInfo {
        code: SYNTAX_ERROR,
        title: "syntax error",
        explanation: "The source lexed into tokens but they do not form a grammatical \
                      Descend program. The message names the token the parser found and \
                      what it expected instead, and the span points at the offending \
                      token. Syntax errors are reported one at a time: fix the first and \
                      re-check.",
    },
    CodeInfo {
        code: "E0101",
        title: "mismatched types",
        explanation: "Two types that must agree do not. This also covers memory-space \
                      mismatches such as passing a GPU buffer where `cpu.mem` is required \
                      (the paper's swapped-`cudaMemcpy` example): in Descend the memory \
                      space is part of the reference type, so `copy_mem_to_host` with \
                      swapped arguments is a type error rather than a runtime crash. \
                      Check the annotated types on both sides of the reported span.",
    },
    CodeInfo {
        code: "E0102",
        title: "conflicting memory access",
        explanation: "Two execution resources may touch the same memory in the same \
                      barrier interval and at least one of them writes: a potential data \
                      race, rejected at compile time. The primary span is the later \
                      access; a secondary span marks the prior conflicting one. Make the \
                      accesses disjoint (select per-thread parts with views and \
                      `[[...]]` selects), order them with a block-wide `sync`, or use an \
                      atomic RMW if concurrent updates are intended.",
    },
    CodeInfo {
        code: "E0103",
        title: "narrowing violated",
        explanation: "A unique (writable) access is visible to more execution resources \
                      than it is narrowed to: some scheduling level — named in the \
                      message with its extent — has no select distributing the memory, \
                      so every instance at that level would hold the same unique access \
                      simultaneously. Insert the missing `[[...]]` select (usually via a \
                      `group::<..>` view matching the level's extent) so each instance \
                      owns a distinct part, or make the access shared (read-only), or \
                      use an atomic RMW for concurrent updates.",
    },
    CodeInfo {
        code: "E0104",
        title: "barrier not allowed here",
        explanation: "A `sync` appears at a point not all threads of the block reach — \
                      under a thread-space `split`, only one branch's threads would \
                      arrive and the block would deadlock (the paper's Section 2.2 \
                      example). Hoist the `sync` out of the split so every thread of the \
                      block executes it, or restructure so the exchange happens outside \
                      the divergent region.",
    },
    CodeInfo {
        code: "E0105",
        title: "wrong execution context",
        explanation: "A construct ran on the wrong side of the host/device boundary: \
                      dereferencing `cpu.mem` inside a kernel, `sync` or shared-memory \
                      allocation on the CPU, a warp shuffle in host code. Descend types \
                      every function with its execution resource (`cpu.thread`, \
                      `gpu.grid<..>`), so these are caught statically. Move the \
                      operation to the right side, or copy data across with \
                      `gpu_alloc_copy` / `copy_mem_to_host` first.",
    },
    CodeInfo {
        code: "E0106",
        title: "launch configuration mismatch",
        explanation: "A kernel launch's `<<<Grid, Block>>>` shape differs from the \
                      kernel's `-[grid: gpu.grid<G, B>]->` annotation after substituting \
                      generic nats. The kernel's scheduling and safety analysis are \
                      verified against the annotated shape, so launching with any other \
                      shape is rejected. Fix the launch operands or the annotation.",
    },
    CodeInfo {
        code: "E0107",
        title: "unknown name",
        explanation: "A variable, function, kernel, view, or execution resource name is \
                      not in scope at the use site. The message names the missing \
                      identifier. Check spelling, and that kernels are defined in the \
                      same program they are launched from.",
    },
    CodeInfo {
        code: "E0108",
        title: "use of moved value",
        explanation: "Host buffers are affine values: assigning one to a new binding or \
                      passing it by value moves it, and the original name becomes \
                      unusable. This diagnostic points at a use after such a move. \
                      Borrow (`&h` / `&uniq h`) instead of moving, or reorder so the \
                      move happens last.",
    },
    CodeInfo {
        code: "E0109",
        title: "conflicting borrows",
        explanation: "A new borrow overlaps an existing one in an incompatible way: two \
                      `&uniq` borrows of the same place, or a `&uniq` overlapping a \
                      live shared borrow (Rust's aliasing-xor-mutation rule, applied on \
                      CPU and GPU alike). Drop or scope the first borrow before taking \
                      the second, or make both shared if neither writes.",
    },
    CodeInfo {
        code: "E0110",
        title: "cannot write to this place",
        explanation: "A write targets a place that is not writable: through a shared \
                      (non-`uniq`) reference, or to an immutable `let` binding. Take the \
                      reference as `&uniq`, or declare the binding `let mut`.",
    },
    CodeInfo {
        code: "E0111",
        title: "view cannot be applied",
        explanation: "A view combinator was applied to a shape it does not fit: a \
                      `group::<k>` that does not divide the array length, a `transpose` \
                      of a non-2-D view, `windows::<w, s>` with a tail the stride does \
                      not cover exactly, an unprojected `zip` used as memory. The \
                      message names the view and the offending shape. Adjust the view \
                      parameters to the array's actual extent.",
    },
    CodeInfo {
        code: "E0112",
        title: "select size mismatch",
        explanation: "A `[[...]]` select distributes an array over an execution level, \
                      which requires the array extent to equal the level's extent — \
                      otherwise some instances would have no element or elements would \
                      be left over. Reshape with `group::<..>` (or `split`) until the \
                      selected dimension matches the number of blocks/threads/lanes \
                      selecting it.",
    },
    CodeInfo {
        code: "E0113",
        title: "where clause violated",
        explanation: "Instantiating a generic function with concrete nats falsified one \
                      of its `where` constraints (for example `n == nb * 512` with \
                      `n = 100, nb = 2`). The constraints are exactly what makes the \
                      function's internal scheduling sound, so the instantiation is \
                      rejected. Pass nat arguments satisfying the clause, or generalize \
                      the clause if it is stricter than the body needs.",
    },
    CodeInfo {
        code: "E0114",
        title: "invalid schedule",
        explanation: "A `sched`/`split`/`to_warps` misuses the execution hierarchy: \
                      scheduling a dimension the resource does not have, scheduling the \
                      same dimension twice, splitting at a point outside the extent, \
                      `to_warps` on a 2-D or non-warp-multiple block, or scheduling on \
                      the CPU. The message names the dimension and resource. Consult the \
                      grid → blocks → warps → lanes hierarchy in `docs/LANGUAGE.md`.",
    },
    CodeInfo {
        code: "E0115",
        title: "invalid shuffle",
        explanation: "A warp shuffle (`shfl_down`/`shfl_xor`) is used outside its narrow \
                      validity window: outside warp-level scheduling, with unscheduled \
                      warp/lane dimensions, under a lane-space split (a divergent warp \
                      cannot exchange), with distance 0, or with a distance reaching \
                      across the 32-lane warp boundary — the message names the offending \
                      distance. Keep exchanges within one warp and stage anything wider \
                      through shared memory and a `sync`.",
    },
    CodeInfo {
        code: "E0116",
        title: "shadowing is not allowed",
        explanation: "A binding re-uses a name already bound in scope. Descend rejects \
                      shadowing so that every place expression has a unique root — the \
                      conflict and narrowing analyses identify memory by those roots, \
                      and shadowed roots would let two different buffers alias one name \
                      (including shadowing introduced through views). Rename the new \
                      binding.",
    },
    CodeInfo {
        code: "E0117",
        title: "wrong number of arguments",
        explanation: "A call site's argument or generic-argument count differs from the \
                      callee's signature: kernel launches must supply every declared \
                      parameter and nat, and builtins have fixed arities. The message \
                      names the callee and both counts.",
    },
    CodeInfo {
        code: "E0118",
        title: "unsupported construct",
        explanation: "The construct is outside the checked subset this compiler \
                      implements: non-`nat` generics, kernel parameters that are not \
                      references, host functions with parameters, moves out of arrays, \
                      unsupported scalar types, and similar. The message states the \
                      specific restriction. `docs/DESIGN.md` documents the intentional \
                      divergences from the paper.",
    },
    CodeInfo {
        code: "E0119",
        title: "index out of bounds",
        explanation: "A statically evaluable index provably escapes the array's bounds, \
                      like indexing element 9 of an 8-element shared array. Descend \
                      indexes are static (or select-derived) wherever possible, so this \
                      is caught at compile time rather than corrupting memory at \
                      runtime.",
    },
    CodeInfo {
        code: "E0120",
        title: "size is not statically known",
        explanation: "A nat that the checker must evaluate — an array extent, a view \
                      parameter, a launch shape, a `where` operand — could not be \
                      reduced to a literal: it references an undefined nat variable or \
                      an unsubstituted generic. All shapes in Descend are static; bind \
                      the value as a `const`, a generic nat argument, or a literal.",
    },
    CodeInfo {
        code: LOWERING_FAILED,
        title: "lowering failed",
        explanation: "The type checker accepted the program but the IR lowering or a \
                      backend emitter could not translate it — for example an atomic \
                      scatter index whose bound is not a literal at emission time. These \
                      errors carry no source span (they arise from the elaborated form, \
                      not a single construct). They usually indicate a construct \
                      combination the backends do not support yet; the message has the \
                      details.",
    },
];

/// Looks up a code's registry entry.
pub fn lookup(code: &str) -> Option<&'static CodeInfo> {
    REGISTRY.iter().find(|i| i.code == code)
}

/// The registry title of `code`.
///
/// # Panics
///
/// On an unregistered code — diagnostics are only constructed through
/// [`crate::Diagnostic::coded`], so an unknown code is a compiler bug.
pub fn title(code: &str) -> &'static str {
    lookup(code)
        .unwrap_or_else(|| panic!("error code `{code}` is not in the registry"))
        .title
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_sorted_and_well_formed() {
        for w in REGISTRY.windows(2) {
            assert!(w[0].code < w[1].code, "{} !< {}", w[0].code, w[1].code);
        }
        for i in REGISTRY {
            assert!(
                i.code.len() == 5 && i.code.starts_with('E'),
                "malformed code {}",
                i.code
            );
            assert!(
                i.code[1..].bytes().all(|b| b.is_ascii_digit()),
                "malformed code {}",
                i.code
            );
            assert!(!i.title.is_empty() && !i.explanation.is_empty());
            assert!(
                i.explanation.split_whitespace().count() >= 20,
                "{}: explanation should be a real paragraph",
                i.code
            );
        }
    }

    #[test]
    fn lookup_finds_and_misses() {
        assert_eq!(lookup("E0104").unwrap().title, "barrier not allowed here");
        assert_eq!(lookup(SYNTAX_ERROR).unwrap().title, "syntax error");
        assert!(lookup("E9999").is_none());
    }
}
