//! Views: safe, composable reshapes of arrays (paper Listing 3).
//!
//! A view transforms how an array is *accessed* without changing its
//! memory layout. The basic views and their types are:
//!
//! ```text
//! split<k, n, d>([[d; n]]) -> ([[d; k]], [[d; n-k]])   where n >= k
//! group<k, n, d>([[d; n]]) -> [[ [[d; k]]; n/k ]]       where n % k == 0
//! transpose<m, n, d>([[ [[d; n]]; m ]]) -> [[ [[d; m]]; n ]]
//! reverse<n, d>([[d; n]]) -> [[d; n]]
//! map<..>(v, [[d1; n]]) -> [[v(d1); n]]
//! windows<w, s, n, d>([[d; n]]) -> [[ [[d; w]]; (n-w)/s + 1 ]]
//!                                   where n >= w and (n-w) % s == 0
//! zip<n, d1, d2>([[d1; n]], [[d2; n]]) -> [[ (d1, d2); n ]]
//! ```
//!
//! User-defined views (the paper's `view group_by_row<..> = ...`) expand
//! into chains of basic views with their nat parameters substituted.
//!
//! `windows::<w, s>` is the first view whose *elements alias*: when the
//! stride is smaller than the width, consecutive windows share `w - s`
//! elements. Reads through overlapping windows are fine (reads may be
//! replicated); any write through an overlapping window conflicts — see
//! [`windows_overlap`] and the conflict walk in [`crate::conflict`].
//!
//! `zip` is not a postfix view: it pairs *two* places (`zip(a, b)`), and
//! its element projections `.0`/`.1` route back to the underlying
//! buffers. The typing half lives here ([`zip_ty`]); the routing is
//! performed by the type checker, which mirrors every later step into
//! both component paths.

use descend_ast::term::ViewApp;
use descend_ast::ty::DataTy;
use descend_ast::Nat;
use descend_exec::Side;
use std::collections::HashMap;
use std::fmt;

/// A resolved view step. Unlike the surface [`ViewApp`], every step is a
/// basic view with concrete (possibly symbolic) nat parameters, and
/// context-dependent parameters (such as the length for `reverse`) have
/// been filled in from the array type.
#[derive(Clone, Debug, PartialEq)]
pub enum ViewStep {
    /// `group::<k>`: `[[d; n]] -> [[ [[d;k]]; n/k ]]`.
    Group {
        /// Elements per group.
        k: Nat,
    },
    /// `transpose`: swap the outer two dimensions.
    Transpose,
    /// `reverse`: reverse the outer dimension (length captured at
    /// resolution time; needed to lower `i -> n-1-i`).
    Reverse {
        /// Length of the reversed dimension.
        n: Nat,
    },
    /// `split::<pos>` *before* projection: yields a tuple of two views.
    /// Must be immediately projected with `.fst`/`.snd`.
    SplitAt {
        /// Split position.
        pos: Nat,
    },
    /// A projected split: one of the two halves.
    SplitPart {
        /// Split position.
        pos: Nat,
        /// Which half.
        side: Side,
    },
    /// `map(v)`: apply a view chain to every element.
    Map(Vec<ViewStep>),
    /// `windows::<w, s>`: strided sliding windows,
    /// `[[d; n]] -> [[ [[d; w]]; (n-w)/s + 1 ]]`. Window `i` covers the
    /// elements `[i*s, i*s + w)`; with `s < w`, distinct windows alias.
    Windows {
        /// Window width.
        w: Nat,
        /// Stride between window start offsets.
        s: Nat,
    },
    /// `zip(a, b)` *before* projection: the element is the pair of the
    /// operands' elements. A zip must be projected with `.0`/`.1`, which
    /// routes the access back into the chosen operand's path; an
    /// unprojected zip step can neither be lowered nor accessed.
    Zip,
}

/// Whether windows of width `w` at stride `s` can alias: `true` unless
/// `s >= w` is statically provable. Overlapping windows may be *read*
/// (reads replicate freely) but never written — two sibling executors'
/// windows share elements.
pub fn windows_overlap(w: &Nat, s: &Nat) -> bool {
    if s.equal(w) {
        return false;
    }
    match (w.as_lit(), s.as_lit()) {
        (Some(w), Some(s)) => s < w,
        // Not statically comparable: conservatively overlapping.
        _ => true,
    }
}

impl ViewStep {
    /// Structural equality up to nat normalization.
    pub fn same(&self, other: &ViewStep) -> bool {
        match (self, other) {
            (ViewStep::Group { k: a }, ViewStep::Group { k: b }) => a.equal(b),
            (ViewStep::Transpose, ViewStep::Transpose) => true,
            (ViewStep::Reverse { n: a }, ViewStep::Reverse { n: b }) => a.equal(b),
            (ViewStep::SplitAt { pos: a }, ViewStep::SplitAt { pos: b }) => a.equal(b),
            (
                ViewStep::SplitPart { pos: a, side: s1 },
                ViewStep::SplitPart { pos: b, side: s2 },
            ) => a.equal(b) && s1 == s2,
            (ViewStep::Map(a), ViewStep::Map(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.same(y))
            }
            (ViewStep::Windows { w: w1, s: s1 }, ViewStep::Windows { w: w2, s: s2 }) => {
                w1.equal(w2) && s1.equal(s2)
            }
            (ViewStep::Zip, ViewStep::Zip) => true,
            _ => false,
        }
    }

    /// Substitutes nat variables in all parameters.
    pub fn subst_nats(&self, map: &dyn Fn(&str) -> Option<Nat>) -> ViewStep {
        match self {
            ViewStep::Group { k } => ViewStep::Group { k: k.subst(map) },
            ViewStep::Transpose => ViewStep::Transpose,
            ViewStep::Reverse { n } => ViewStep::Reverse { n: n.subst(map) },
            ViewStep::SplitAt { pos } => ViewStep::SplitAt {
                pos: pos.subst(map),
            },
            ViewStep::SplitPart { pos, side } => ViewStep::SplitPart {
                pos: pos.subst(map),
                side: *side,
            },
            ViewStep::Map(inner) => {
                ViewStep::Map(inner.iter().map(|s| s.subst_nats(map)).collect())
            }
            ViewStep::Windows { w, s } => ViewStep::Windows {
                w: w.subst(map),
                s: s.subst(map),
            },
            ViewStep::Zip => ViewStep::Zip,
        }
    }
}

impl fmt::Display for ViewStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViewStep::Group { k } => write!(f, "group::<{k}>"),
            ViewStep::Transpose => write!(f, "transpose"),
            ViewStep::Reverse { .. } => write!(f, "reverse"),
            ViewStep::SplitAt { pos } => write!(f, "split::<{pos}>"),
            ViewStep::SplitPart { pos, side } => write!(f, "split::<{pos}>.{side}"),
            ViewStep::Map(inner) => {
                write!(f, "map(")?;
                for (i, s) in inner.iter().enumerate() {
                    if i > 0 {
                        write!(f, ".")?;
                    }
                    write!(f, "{s}")?;
                }
                write!(f, ")")
            }
            ViewStep::Windows { w, s } => write!(f, "windows::<{w}, {s}>"),
            ViewStep::Zip => write!(f, "zip"),
        }
    }
}

/// Errors from resolving or applying views.
#[derive(Clone, Debug, PartialEq)]
pub enum ViewError {
    /// The view name is neither basic nor user-defined.
    UnknownView(String),
    /// Wrong number of nat arguments.
    NatArity {
        /// View name.
        view: String,
        /// Expected count.
        expected: usize,
        /// Provided count.
        found: usize,
    },
    /// Wrong number of view arguments (only `map` takes one chain).
    ViewArity(String),
    /// The view was applied to a non-array type.
    NotAnArray(String),
    /// `group::<k>` where `k` does not divide the array length.
    NotDivisible {
        /// Array length.
        n: Nat,
        /// Group size.
        k: Nat,
    },
    /// `split::<pos>` where `pos` exceeds the array length.
    SplitTooLarge {
        /// Array length.
        n: Nat,
        /// Position.
        pos: Nat,
    },
    /// `transpose` on an array whose elements are not arrays.
    NotNested(String),
    /// A `split` view that is not immediately projected.
    UnprojectedSplit,
    /// `windows::<w, s>` whose parameters do not tile the array:
    /// `w > n`, a zero width or stride, or `(n - w) % s != 0`.
    WindowsMisfit {
        /// Array length.
        n: Nat,
        /// Window width.
        w: Nat,
        /// Window stride.
        s: Nat,
    },
    /// `zip(a, b)` over arrays of different lengths.
    ZipLengthMismatch {
        /// Length of the first operand.
        left: Nat,
        /// Length of the second operand.
        right: Nat,
    },
    /// A `zip` that must be projected with `.0`/`.1` before use.
    UnprojectedZip,
    /// Size or divisibility could not be decided symbolically.
    Undecidable(String),
}

impl fmt::Display for ViewError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViewError::UnknownView(v) => write!(f, "unknown view `{v}`"),
            ViewError::NatArity {
                view,
                expected,
                found,
            } => write!(
                f,
                "view `{view}` expects {expected} nat argument(s), found {found}"
            ),
            ViewError::ViewArity(v) => {
                write!(f, "view `{v}` applied to a wrong number of view arguments")
            }
            ViewError::NotAnArray(t) => write!(f, "cannot apply view to non-array type `{t}`"),
            ViewError::NotDivisible { n, k } => {
                write!(
                    f,
                    "cannot group array of size {n} into groups of {k}: {n} % {k} != 0"
                )
            }
            ViewError::SplitTooLarge { n, pos } => {
                write!(f, "cannot split array of size {n} at position {pos}")
            }
            ViewError::NotNested(t) => {
                write!(f, "cannot transpose array with non-array elements `{t}`")
            }
            ViewError::UnprojectedSplit => {
                write!(
                    f,
                    "a `split` view must be immediately projected with `.fst` or `.snd`"
                )
            }
            ViewError::WindowsMisfit { n, w, s } => {
                write!(
                    f,
                    "windows::<{w}, {s}> does not tile an array of size {n}: \
                     need {w} <= {n}, {w} >= 1, {s} >= 1 and ({n} - {w}) % {s} == 0"
                )
            }
            ViewError::ZipLengthMismatch { left, right } => {
                write!(
                    f,
                    "cannot zip arrays of different lengths: {left} vs {right}"
                )
            }
            ViewError::UnprojectedZip => {
                write!(f, "a `zip` must be projected with `.0` or `.1`")
            }
            ViewError::Undecidable(m) => write!(f, "cannot decide statically: {m}"),
        }
    }
}

impl std::error::Error for ViewError {}

/// The user-defined views in scope (name → parameters and body chain).
#[derive(Clone, Debug, Default)]
pub struct ViewDefs {
    defs: HashMap<String, (Vec<String>, Vec<ViewApp>)>,
}

impl ViewDefs {
    /// An empty registry.
    pub fn new() -> ViewDefs {
        ViewDefs::default()
    }

    /// Registers a user-defined view.
    pub fn insert(&mut self, name: impl Into<String>, params: Vec<String>, body: Vec<ViewApp>) {
        self.defs.insert(name.into(), (params, body));
    }

    /// Looks up a user-defined view.
    pub fn get(&self, name: &str) -> Option<&(Vec<String>, Vec<ViewApp>)> {
        self.defs.get(name)
    }
}

/// Extracts element type and length from an array or array-view type.
fn elem_and_len(ty: &DataTy) -> Result<(&DataTy, &Nat), ViewError> {
    match ty {
        DataTy::Array(e, n) | DataTy::ArrayView(e, n) => Ok((e, n)),
        other => Err(ViewError::NotAnArray(other.to_string())),
    }
}

/// Applies a single resolved view step to a type, producing the shape of
/// the result. This is the typing of Listing 3.
///
/// # Errors
///
/// Returns a [`ViewError`] if the type does not fit the view (non-array,
/// non-divisible group, out-of-range split, ...).
pub fn apply_view(ty: &DataTy, step: &ViewStep) -> Result<DataTy, ViewError> {
    match step {
        ViewStep::Group { k } => {
            let (elem, n) = elem_and_len(ty)?;
            let rem = (n.clone() % k.clone()).as_lit();
            match rem {
                Some(0) => {}
                Some(_) => {
                    return Err(ViewError::NotDivisible {
                        n: n.clone(),
                        k: k.clone(),
                    })
                }
                None => return Err(ViewError::Undecidable(format!("whether {n} % {k} == 0"))),
            }
            let groups = (n.clone() / k.clone()).simplify();
            Ok(DataTy::ArrayView(
                Box::new(DataTy::ArrayView(Box::new(elem.clone()), k.clone())),
                groups,
            ))
        }
        ViewStep::Transpose => {
            let (elem, m) = elem_and_len(ty)?;
            let (inner, n) = match elem {
                DataTy::Array(e, n) | DataTy::ArrayView(e, n) => (e, n),
                other => return Err(ViewError::NotNested(other.to_string())),
            };
            Ok(DataTy::ArrayView(
                Box::new(DataTy::ArrayView(Box::new((**inner).clone()), m.clone())),
                n.clone(),
            ))
        }
        ViewStep::Reverse { n } => {
            let (elem, len) = elem_and_len(ty)?;
            debug_assert!(n.equal(len), "reverse length captured at resolution");
            Ok(DataTy::ArrayView(Box::new(elem.clone()), len.clone()))
        }
        ViewStep::SplitAt { pos } => {
            let (elem, n) = elem_and_len(ty)?;
            if let (Some(p), Some(nn)) = (pos.as_lit(), n.as_lit()) {
                if p > nn {
                    return Err(ViewError::SplitTooLarge {
                        n: n.clone(),
                        pos: pos.clone(),
                    });
                }
            }
            let rest = (n.clone() - pos.clone()).simplify();
            Ok(DataTy::Tuple(vec![
                DataTy::ArrayView(Box::new(elem.clone()), pos.clone()),
                DataTy::ArrayView(Box::new(elem.clone()), rest),
            ]))
        }
        ViewStep::SplitPart { pos, side } => {
            let (elem, n) = elem_and_len(ty)?;
            let len = match side {
                Side::Fst => pos.clone(),
                Side::Snd => (n.clone() - pos.clone()).simplify(),
            };
            Ok(DataTy::ArrayView(Box::new(elem.clone()), len))
        }
        ViewStep::Map(inner) => {
            let (elem, n) = elem_and_len(ty)?;
            let mut t = elem.clone();
            for s in inner {
                t = apply_view(&t, s)?;
            }
            Ok(DataTy::ArrayView(Box::new(t), n.clone()))
        }
        ViewStep::Windows { w, s } => {
            let (elem, n) = elem_and_len(ty)?;
            if w.as_lit() == Some(0) || s.as_lit() == Some(0) {
                return Err(ViewError::WindowsMisfit {
                    n: n.clone(),
                    w: w.clone(),
                    s: s.clone(),
                });
            }
            if let (Some(nn), Some(ww)) = (n.as_lit(), w.as_lit()) {
                if ww > nn {
                    return Err(ViewError::WindowsMisfit {
                        n: n.clone(),
                        w: w.clone(),
                        s: s.clone(),
                    });
                }
            }
            // The window count (n - w) / s + 1 is exact only when the
            // stride tiles the remainder; a ragged tail would silently
            // drop elements, so it is rejected like a non-dividing group.
            let span = (n.clone() - w.clone()).simplify();
            match (span.clone() % s.clone()).as_lit() {
                Some(0) => {}
                Some(_) => {
                    return Err(ViewError::WindowsMisfit {
                        n: n.clone(),
                        w: w.clone(),
                        s: s.clone(),
                    })
                }
                None => {
                    return Err(ViewError::Undecidable(format!(
                        "whether ({n} - {w}) % {s} == 0"
                    )))
                }
            }
            let count = (span / s.clone() + Nat::lit(1)).simplify();
            Ok(DataTy::ArrayView(
                Box::new(DataTy::ArrayView(Box::new(elem.clone()), w.clone())),
                count,
            ))
        }
        // A zip is typed against its two operands by `zip_ty`; the step
        // only ever appears on the (unusable) unprojected pair path.
        ViewStep::Zip => Err(ViewError::UnprojectedZip),
    }
}

/// Types `zip(a, b)`: both operands must be arrays (or array views) of
/// equal length; the result views their elements as pairs. The length
/// equality is a nat constraint, decided by normalization — two literal
/// lengths that differ are a [`ViewError::ZipLengthMismatch`], and
/// lengths that cannot be proven equal are [`ViewError::Undecidable`].
///
/// # Errors
///
/// See above; also [`ViewError::NotAnArray`] for non-array operands.
pub fn zip_ty(a: &DataTy, b: &DataTy) -> Result<DataTy, ViewError> {
    let (ea, na) = elem_and_len(a)?;
    let (eb, nb) = elem_and_len(b)?;
    if !na.equal(nb) {
        if na.as_lit().is_some() && nb.as_lit().is_some() {
            return Err(ViewError::ZipLengthMismatch {
                left: na.clone(),
                right: nb.clone(),
            });
        }
        return Err(ViewError::Undecidable(format!("whether {na} == {nb}")));
    }
    Ok(DataTy::ArrayView(
        Box::new(DataTy::Tuple(vec![ea.clone(), eb.clone()])),
        na.clone(),
    ))
}

/// Resolves a surface view application against the type it is applied to,
/// producing the resolved steps and the result type.
///
/// Named views are expanded with their nat parameters substituted; the
/// expansion is itself resolved left to right, threading the type.
///
/// # Errors
///
/// Returns a [`ViewError`] for unknown views, arity mismatches, and shape
/// errors.
pub fn resolve_view_app(
    app: &ViewApp,
    defs: &ViewDefs,
    ty: &DataTy,
) -> Result<(Vec<ViewStep>, DataTy), ViewError> {
    let expect_nats = |n: usize| -> Result<(), ViewError> {
        if app.nat_args.len() != n {
            Err(ViewError::NatArity {
                view: app.name.clone(),
                expected: n,
                found: app.nat_args.len(),
            })
        } else {
            Ok(())
        }
    };
    let expect_views = |n: usize| -> Result<(), ViewError> {
        if app.view_args.len() != n {
            Err(ViewError::ViewArity(app.name.clone()))
        } else {
            Ok(())
        }
    };
    match app.name.as_str() {
        "group" => {
            expect_nats(1)?;
            expect_views(0)?;
            let step = ViewStep::Group {
                k: app.nat_args[0].clone(),
            };
            let out = apply_view(ty, &step)?;
            Ok((vec![step], out))
        }
        "transpose" => {
            expect_nats(0)?;
            expect_views(0)?;
            let step = ViewStep::Transpose;
            let out = apply_view(ty, &step)?;
            Ok((vec![step], out))
        }
        "reverse" | "rev" => {
            expect_nats(0)?;
            expect_views(0)?;
            let (_, n) = elem_and_len(ty)?;
            let step = ViewStep::Reverse { n: n.clone() };
            let out = apply_view(ty, &step)?;
            Ok((vec![step], out))
        }
        "split" => {
            expect_nats(1)?;
            expect_views(0)?;
            let step = ViewStep::SplitAt {
                pos: app.nat_args[0].clone(),
            };
            let out = apply_view(ty, &step)?;
            Ok((vec![step], out))
        }
        "windows" => {
            expect_nats(2)?;
            expect_views(0)?;
            let step = ViewStep::Windows {
                w: app.nat_args[0].clone(),
                s: app.nat_args[1].clone(),
            };
            let out = apply_view(ty, &step)?;
            Ok((vec![step], out))
        }
        // `zip` pairs two places; it has no postfix form.
        "zip" => Err(ViewError::Undecidable(
            "`zip` pairs two places: write `zip(a, b)`, not `p.zip`".into(),
        )),
        "map" => {
            expect_nats(0)?;
            if app.view_args.is_empty() {
                return Err(ViewError::ViewArity("map".into()));
            }
            let (elem, _) = elem_and_len(ty)?;
            let mut inner_steps = Vec::new();
            let mut elem_ty = elem.clone();
            for va in &app.view_args {
                let (steps, out) = resolve_view_app(va, defs, &elem_ty)?;
                inner_steps.extend(steps);
                elem_ty = out;
            }
            let step = ViewStep::Map(inner_steps);
            let out = apply_view(ty, &step)?;
            Ok((vec![step], out))
        }
        name => {
            let (params, body) = defs
                .get(name)
                .ok_or_else(|| ViewError::UnknownView(name.to_string()))?;
            if app.nat_args.len() != params.len() {
                return Err(ViewError::NatArity {
                    view: name.to_string(),
                    expected: params.len(),
                    found: app.nat_args.len(),
                });
            }
            let substitution: HashMap<&str, Nat> = params
                .iter()
                .map(String::as_str)
                .zip(app.nat_args.iter().cloned())
                .collect();
            let mut steps = Vec::new();
            let mut cur = ty.clone();
            for body_app in body {
                let concrete = body_app.subst_nats(&|x| substitution.get(x).cloned());
                let (s, out) = resolve_view_app(&concrete, defs, &cur)?;
                steps.extend(s);
                cur = out;
            }
            Ok((steps, cur))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f64_arr(n: u64) -> DataTy {
        DataTy::array(DataTy::f64(), n)
    }

    fn f64_mat(rows: u64, cols: u64) -> DataTy {
        DataTy::array(DataTy::array(DataTy::f64(), cols), rows)
    }

    fn shape(ty: &DataTy) -> Vec<u64> {
        let mut out = Vec::new();
        let mut cur = ty;
        loop {
            match cur {
                DataTy::Array(e, n) | DataTy::ArrayView(e, n) => {
                    out.push(n.as_lit().expect("literal shape"));
                    cur = e;
                }
                _ => return out,
            }
        }
    }

    #[test]
    fn group_typing_matches_listing_3() {
        // group<8, 32, f64>: [[f64; 32]] -> [[ [[f64; 8]]; 4 ]]
        let (steps, out) = resolve_view_app(
            &ViewApp::with_nats("group", vec![Nat::lit(8)]),
            &ViewDefs::new(),
            &f64_arr(32),
        )
        .unwrap();
        assert_eq!(steps.len(), 1);
        assert_eq!(shape(&out), vec![4, 8]);
    }

    #[test]
    fn group_rejects_non_divisible() {
        let err = resolve_view_app(
            &ViewApp::with_nats("group", vec![Nat::lit(5)]),
            &ViewDefs::new(),
            &f64_arr(32),
        )
        .unwrap_err();
        assert!(matches!(err, ViewError::NotDivisible { .. }));
    }

    #[test]
    fn transpose_typing_matches_listing_3() {
        // transpose<m=8, n=32>: [[ [[f64;32]]; 8 ]] -> [[ [[f64;8]]; 32 ]]
        let (_, out) = resolve_view_app(
            &ViewApp::simple("transpose"),
            &ViewDefs::new(),
            &f64_mat(8, 32),
        )
        .unwrap();
        assert_eq!(shape(&out), vec![32, 8]);
    }

    #[test]
    fn transpose_requires_nested_arrays() {
        let err = resolve_view_app(&ViewApp::simple("transpose"), &ViewDefs::new(), &f64_arr(8))
            .unwrap_err();
        assert!(matches!(err, ViewError::NotNested(_)));
    }

    #[test]
    fn reverse_preserves_shape() {
        let (steps, out) =
            resolve_view_app(&ViewApp::simple("reverse"), &ViewDefs::new(), &f64_arr(16)).unwrap();
        assert_eq!(shape(&out), vec![16]);
        assert!(matches!(&steps[0], ViewStep::Reverse { n } if n.as_lit() == Some(16)));
        // `rev` is an accepted alias.
        resolve_view_app(&ViewApp::simple("rev"), &ViewDefs::new(), &f64_arr(16)).unwrap();
    }

    #[test]
    fn split_produces_tuple_of_views() {
        let (_, out) = resolve_view_app(
            &ViewApp::with_nats("split", vec![Nat::lit(12)]),
            &ViewDefs::new(),
            &f64_arr(32),
        )
        .unwrap();
        match out {
            DataTy::Tuple(ts) => {
                assert_eq!(shape(&ts[0]), vec![12]);
                assert_eq!(shape(&ts[1]), vec![20]);
            }
            other => panic!("expected tuple, got {other}"),
        }
    }

    #[test]
    fn split_out_of_range_rejected() {
        let err = resolve_view_app(
            &ViewApp::with_nats("split", vec![Nat::lit(64)]),
            &ViewDefs::new(),
            &f64_arr(32),
        )
        .unwrap_err();
        assert!(matches!(err, ViewError::SplitTooLarge { .. }));
    }

    #[test]
    fn map_applies_inner_view_to_elements() {
        // map(group::<4>) on [[ [f64;8]; 2 ]] -> [[ [[ [[f64;4]]; 2]]; 2 ]]
        let mut app = ViewApp::simple("map");
        app.view_args
            .push(ViewApp::with_nats("group", vec![Nat::lit(4)]));
        let (_, out) = resolve_view_app(&app, &ViewDefs::new(), &f64_mat(2, 8)).unwrap();
        assert_eq!(shape(&out), vec![2, 2, 4]);
    }

    #[test]
    fn named_view_group_by_row_expands() {
        // The paper: view group_by_row<row_size, num_rows> =
        //     group::<row_size/num_rows>.map(transpose)
        let mut defs = ViewDefs::new();
        let mut map_transpose = ViewApp::simple("map");
        map_transpose.view_args.push(ViewApp::simple("transpose"));
        defs.insert(
            "group_by_row",
            vec!["row_size".into(), "num_rows".into()],
            vec![
                ViewApp::with_nats("group", vec![Nat::var("row_size") / Nat::var("num_rows")]),
                map_transpose,
            ],
        );
        // Applied to a 32x32 matrix with <32, 4>: group::<8>.map(transpose)
        // : (32, 32) -> (4, 8, 32) -> (4, 32, 8)
        let (steps, out) = resolve_view_app(
            &ViewApp::with_nats("group_by_row", vec![Nat::lit(32), Nat::lit(4)]),
            &defs,
            &f64_mat(32, 32),
        )
        .unwrap();
        assert_eq!(shape(&out), vec![4, 32, 8]);
        assert_eq!(steps.len(), 2);
        assert!(matches!(&steps[0], ViewStep::Group { k } if k.as_lit() == Some(8)));
        assert!(matches!(&steps[1], ViewStep::Map(_)));
    }

    #[test]
    fn tiles_view_composes_to_tile_grid() {
        // tiles<th, tw> = group::<th>.map(map(group::<tw>)).map(transpose)
        // on a 2048x2048 matrix with 32x32 tiles: (64, 64, 32, 32).
        let mut defs = ViewDefs::new();
        let mut map_map_group = ViewApp::simple("map");
        let mut inner_map = ViewApp::simple("map");
        inner_map
            .view_args
            .push(ViewApp::with_nats("group", vec![Nat::var("tw")]));
        map_map_group.view_args.push(inner_map);
        let mut map_transpose = ViewApp::simple("map");
        map_transpose.view_args.push(ViewApp::simple("transpose"));
        defs.insert(
            "tiles",
            vec!["th".into(), "tw".into()],
            vec![
                ViewApp::with_nats("group", vec![Nat::var("th")]),
                map_map_group,
                map_transpose,
            ],
        );
        let (_, out) = resolve_view_app(
            &ViewApp::with_nats("tiles", vec![Nat::lit(32), Nat::lit(32)]),
            &defs,
            &f64_mat(2048, 2048),
        )
        .unwrap();
        assert_eq!(shape(&out), vec![64, 64, 32, 32]);
    }

    #[test]
    fn unknown_view_rejected() {
        let err = resolve_view_app(
            &ViewApp::simple("no_such_view"),
            &ViewDefs::new(),
            &f64_arr(8),
        )
        .unwrap_err();
        assert!(matches!(err, ViewError::UnknownView(_)));
    }

    #[test]
    fn nat_arity_checked() {
        let err = resolve_view_app(
            &ViewApp::with_nats("group", vec![Nat::lit(2), Nat::lit(3)]),
            &ViewDefs::new(),
            &f64_arr(8),
        )
        .unwrap_err();
        assert!(matches!(err, ViewError::NatArity { .. }));
    }

    #[test]
    fn view_on_scalar_rejected() {
        let err = resolve_view_app(
            &ViewApp::with_nats("group", vec![Nat::lit(2)]),
            &ViewDefs::new(),
            &DataTy::f64(),
        )
        .unwrap_err();
        assert!(matches!(err, ViewError::NotAnArray(_)));
    }

    #[test]
    fn view_step_same_modulo_nats() {
        let a = ViewStep::Group {
            k: Nat::var("n") / Nat::var("n"),
        };
        let b = ViewStep::Group { k: Nat::lit(1) };
        assert!(a.same(&b));
        assert!(!ViewStep::Transpose.same(&b));
    }

    #[test]
    fn symbolic_group_with_divisible_size() {
        // group::<k> on [f64; k*m] works symbolically.
        let ty = DataTy::array(DataTy::f64(), Nat::var("k") * Nat::var("m"));
        let (_, out) = resolve_view_app(
            &ViewApp::with_nats("group", vec![Nat::var("k")]),
            &ViewDefs::new(),
            &ty,
        )
        .unwrap();
        match &out {
            DataTy::ArrayView(inner, groups) => {
                assert!(groups.equal(&Nat::var("m")));
                match &**inner {
                    DataTy::ArrayView(_, k) => assert!(k.equal(&Nat::var("k"))),
                    other => panic!("unexpected {other}"),
                }
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn windows_typing_counts_windows() {
        // windows::<3, 1> on [f64; 10] -> [[ [[f64;3]]; 8 ]]
        let (steps, out) = resolve_view_app(
            &ViewApp::with_nats("windows", vec![Nat::lit(3), Nat::lit(1)]),
            &ViewDefs::new(),
            &f64_arr(10),
        )
        .unwrap();
        assert_eq!(shape(&out), vec![8, 3]);
        assert!(matches!(&steps[0], ViewStep::Windows { w, s }
            if w.as_lit() == Some(3) && s.as_lit() == Some(1)));
        // windows::<258, 256> on [f64; 2050] -> 8 block tiles with halo.
        let (_, out) = resolve_view_app(
            &ViewApp::with_nats("windows", vec![Nat::lit(258), Nat::lit(256)]),
            &ViewDefs::new(),
            &f64_arr(2050),
        )
        .unwrap();
        assert_eq!(shape(&out), vec![8, 258]);
    }

    #[test]
    fn windows_rejects_misfits() {
        // Width exceeding the array.
        let err = resolve_view_app(
            &ViewApp::with_nats("windows", vec![Nat::lit(64), Nat::lit(1)]),
            &ViewDefs::new(),
            &f64_arr(32),
        )
        .unwrap_err();
        assert!(matches!(err, ViewError::WindowsMisfit { .. }));
        // Ragged tail: (10 - 4) % 4 != 0.
        let err = resolve_view_app(
            &ViewApp::with_nats("windows", vec![Nat::lit(4), Nat::lit(4)]),
            &ViewDefs::new(),
            &f64_arr(10),
        )
        .unwrap_err();
        assert!(matches!(err, ViewError::WindowsMisfit { .. }));
        // Zero stride.
        let err = resolve_view_app(
            &ViewApp::with_nats("windows", vec![Nat::lit(4), Nat::lit(0)]),
            &ViewDefs::new(),
            &f64_arr(10),
        )
        .unwrap_err();
        assert!(matches!(err, ViewError::WindowsMisfit { .. }));
        // Arity.
        let err = resolve_view_app(
            &ViewApp::with_nats("windows", vec![Nat::lit(4)]),
            &ViewDefs::new(),
            &f64_arr(10),
        )
        .unwrap_err();
        assert!(matches!(err, ViewError::NatArity { .. }));
    }

    #[test]
    fn windows_overlap_by_stride() {
        assert!(windows_overlap(&Nat::lit(3), &Nat::lit(1)));
        assert!(!windows_overlap(&Nat::lit(3), &Nat::lit(3)));
        assert!(!windows_overlap(&Nat::lit(3), &Nat::lit(4)));
        // Symbolically equal width and stride never overlap.
        assert!(!windows_overlap(&Nat::var("k"), &Nat::var("k")));
        // Incomparable: conservatively overlapping.
        assert!(windows_overlap(&Nat::var("w"), &Nat::var("s")));
    }

    #[test]
    fn zip_typing_pairs_elements() {
        let out = zip_ty(&f64_arr(32), &DataTy::array(DataTy::f32(), 32)).unwrap();
        match &out {
            DataTy::ArrayView(elem, n) => {
                assert_eq!(n.as_lit(), Some(32));
                assert!(matches!(&**elem, DataTy::Tuple(ts) if ts.len() == 2
                        && ts[0].same(&DataTy::f64()) && ts[1].same(&DataTy::f32())));
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn zip_rejects_length_mismatch_and_scalars() {
        let err = zip_ty(&f64_arr(32), &f64_arr(64)).unwrap_err();
        assert!(matches!(err, ViewError::ZipLengthMismatch { .. }));
        let err = zip_ty(&DataTy::f64(), &f64_arr(8)).unwrap_err();
        assert!(matches!(err, ViewError::NotAnArray(_)));
    }

    #[test]
    fn postfix_zip_is_rejected() {
        let err =
            resolve_view_app(&ViewApp::simple("zip"), &ViewDefs::new(), &f64_arr(8)).unwrap_err();
        assert!(matches!(err, ViewError::Undecidable(_)));
    }

    #[test]
    fn symbolic_group_undecidable_reported() {
        let ty = DataTy::array(DataTy::f64(), Nat::var("n"));
        let err = resolve_view_app(
            &ViewApp::with_nats("group", vec![Nat::var("k")]),
            &ViewDefs::new(),
            &ty,
        )
        .unwrap_err();
        assert!(matches!(err, ViewError::Undecidable(_)));
    }
}
