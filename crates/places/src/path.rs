//! Normalized place paths.
//!
//! A [`PlacePath`] is the analysis-ready form of a place expression: the
//! root variable, the execution resource that owns the root, and a list of
//! resolved [`PathStep`]s. The type checker builds paths while typing
//! place expressions; the conflict analysis and the code generator consume
//! them.

use crate::view::ViewStep;
use descend_ast::ty::DimCompo;
use descend_ast::Nat;
use descend_exec::{ExecExpr, ExecOp, Side, Space};
use std::fmt;

/// A resolved select step: `p[[e]]` restricted to a single forall level of
/// the selecting execution resource. Multi-dimensional selects are
/// expanded to one [`SelectStep`] per level by the type checker.
#[derive(Clone, Debug, PartialEq)]
pub struct SelectStep {
    /// The execution resource of the variable named in the select.
    pub exec: ExecExpr,
    /// The index into `exec.ops` of the forall level this select
    /// distributes over.
    pub level_index: usize,
}

impl SelectStep {
    /// Whether two selects distribute over the same forall level: the
    /// operation prefixes up to and including the level must coincide.
    pub fn same_level(&self, other: &SelectStep) -> bool {
        if self.exec.base != other.exec.base {
            return false;
        }
        if self.level_index != other.level_index {
            return false;
        }
        let a = &self.exec.ops[..=self.level_index];
        let b = &other.exec.ops[..=other.level_index];
        a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x.same(y))
    }

    /// The space and dimension of the selected level.
    ///
    /// # Panics
    ///
    /// Panics if `level_index` does not point at a forall op (construction
    /// through the type checker guarantees it does).
    pub fn space_dim(&self) -> (Space, DimCompo) {
        let dim = match &self.exec.ops[self.level_index] {
            ExecOp::Forall(d) => *d,
            other => panic!("select level must be a forall, found {other:?}"),
        };
        let mut prefix = ExecExpr {
            base: self.exec.base.clone(),
            ops: self.exec.ops[..self.level_index].to_vec(),
        };
        // The space is determined by the state before the forall.
        let space = prefix
            .current_space()
            .expect("validated exec has a space for every op");
        prefix.ops.clear();
        (space, dim)
    }

    /// The accumulated coordinate offset of this level: the sum of `snd`
    /// split positions applied to the same space and dimension before the
    /// level. A thread at raw coordinate `c` has branch-local coordinate
    /// `c - offset`.
    pub fn coord_offset(&self) -> Nat {
        let (space, dim) = self.space_dim();
        let mut offset = Nat::lit(0);
        let mut prefix = ExecExpr {
            base: self.exec.base.clone(),
            ops: Vec::new(),
        };
        for op in &self.exec.ops[..self.level_index] {
            if let ExecOp::Split { dim: d, pos, side } = op {
                let op_space = prefix.current_space();
                if *d == dim && op_space == Some(space) && *side == Side::Snd {
                    offset = offset + pos.clone();
                }
            }
            prefix.ops.push(op.clone());
        }
        offset.simplify()
    }
}

/// One resolved step of a place path.
#[derive(Clone, Debug, PartialEq)]
pub enum PathStep {
    /// Tuple projection (0 = `.fst`, 1 = `.snd`).
    Proj(u8),
    /// Dereference.
    Deref,
    /// Index with a nat (literal after for-nat unrolling).
    Index(Nat),
    /// Distributing select.
    Select(SelectStep),
    /// A resolved view step.
    View(ViewStep),
}

impl PathStep {
    /// Structural equality up to nat normalization and select levels.
    pub fn same(&self, other: &PathStep) -> bool {
        match (self, other) {
            (PathStep::Proj(a), PathStep::Proj(b)) => a == b,
            (PathStep::Deref, PathStep::Deref) => true,
            (PathStep::Index(a), PathStep::Index(b)) => a.equal(b),
            (PathStep::Select(a), PathStep::Select(b)) => a.same_level(b),
            (PathStep::View(a), PathStep::View(b)) => a.same(b),
            _ => false,
        }
    }
}

impl fmt::Display for PathStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathStep::Proj(0) => write!(f, ".fst"),
            PathStep::Proj(_) => write!(f, ".snd"),
            PathStep::Deref => write!(f, ".*"),
            PathStep::Index(n) => write!(f, "[{n}]"),
            PathStep::Select(s) => {
                let (space, dim) = self.select_space_dim_or(s);
                write!(f, "[[{}:{dim}]]", space.noun())
            }
            PathStep::View(v) => write!(f, ".{v}"),
        }
    }
}

impl PathStep {
    fn select_space_dim_or(&self, s: &SelectStep) -> (Space, DimCompo) {
        s.space_dim()
    }
}

/// A normalized place path: the root variable, the execution resource at
/// which the root was introduced (its *owner*), and the resolved steps.
#[derive(Clone, Debug, PartialEq)]
pub struct PlacePath {
    /// Root variable name (unique within a function; shadowing is
    /// rejected by the type checker).
    pub root: String,
    /// The execution resource that owns the root.
    pub owner: ExecExpr,
    /// Resolved steps from the root outward.
    pub steps: Vec<PathStep>,
}

impl PlacePath {
    /// A path with no steps.
    pub fn new(root: impl Into<String>, owner: ExecExpr) -> PlacePath {
        PlacePath {
            root: root.into(),
            owner,
            steps: Vec::new(),
        }
    }

    /// Appends a step, fusing a projection that follows a `split` view
    /// into a [`ViewStep::SplitPart`].
    pub fn push(&mut self, step: PathStep) {
        if let PathStep::Proj(i) = &step {
            if let Some(PathStep::View(ViewStep::SplitAt { pos })) = self.steps.last() {
                let side = if *i == 0 { Side::Fst } else { Side::Snd };
                let pos = pos.clone();
                self.steps.pop();
                self.steps
                    .push(PathStep::View(ViewStep::SplitPart { pos, side }));
                return;
            }
        }
        self.steps.push(step);
    }

    /// The select steps of the path (in order).
    pub fn selects(&self) -> impl Iterator<Item = &SelectStep> {
        self.steps.iter().filter_map(|s| match s {
            PathStep::Select(sel) => Some(sel),
            _ => None,
        })
    }

    /// Whether the path still ends in an unprojected `split` view.
    pub fn has_unprojected_split(&self) -> bool {
        self.steps
            .iter()
            .any(|s| matches!(s, PathStep::View(ViewStep::SplitAt { .. })))
    }
}

impl fmt::Display for PlacePath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.root)?;
        for s in &self.steps {
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use descend_ast::ty::Dim;

    fn grid_1d(blocks: u64, threads: u64) -> ExecExpr {
        ExecExpr::grid(Dim::x(blocks), Dim::x(threads))
    }

    #[test]
    fn split_proj_fusion() {
        let g = grid_1d(1, 64);
        let mut p = PlacePath::new("tmp", g.forall(DimCompo::X).unwrap());
        p.push(PathStep::View(ViewStep::SplitAt { pos: Nat::lit(32) }));
        assert!(p.has_unprojected_split());
        p.push(PathStep::Proj(0));
        assert!(!p.has_unprojected_split());
        assert!(matches!(
            &p.steps[0],
            PathStep::View(ViewStep::SplitPart {
                side: Side::Fst,
                ..
            })
        ));
    }

    #[test]
    fn selects_iterator() {
        let g = grid_1d(4, 32);
        let b = g.forall(DimCompo::X).unwrap();
        let t = b.forall(DimCompo::X).unwrap();
        let mut p = PlacePath::new("arr", g.clone());
        p.push(PathStep::Deref);
        p.push(PathStep::Select(SelectStep {
            exec: b.clone(),
            level_index: 0,
        }));
        p.push(PathStep::Select(SelectStep {
            exec: t.clone(),
            level_index: 1,
        }));
        assert_eq!(p.selects().count(), 2);
    }

    #[test]
    fn same_level_distinguishes_branches() {
        let g = grid_1d(1, 64);
        let b = g.forall(DimCompo::X).unwrap();
        let fst = b
            .split(DimCompo::X, Nat::lit(32), Side::Fst)
            .unwrap()
            .forall(DimCompo::X)
            .unwrap();
        let snd = b
            .split(DimCompo::X, Nat::lit(32), Side::Snd)
            .unwrap()
            .forall(DimCompo::X)
            .unwrap();
        let s_fst = SelectStep {
            exec: fst,
            level_index: 2,
        };
        let s_snd = SelectStep {
            exec: snd,
            level_index: 2,
        };
        assert!(s_fst.same_level(&s_fst.clone()));
        assert!(!s_fst.same_level(&s_snd));
    }

    #[test]
    fn coord_offset_accumulates_snd_splits() {
        let g = grid_1d(1, 64);
        let b = g.forall(DimCompo::X).unwrap();
        let snd = b
            .split(DimCompo::X, Nat::lit(24), Side::Snd)
            .unwrap()
            .forall(DimCompo::X)
            .unwrap();
        let sel = SelectStep {
            exec: snd,
            level_index: 2,
        };
        assert_eq!(sel.coord_offset().as_lit(), Some(24));
        let (space, dim) = sel.space_dim();
        assert_eq!(space, Space::Thread);
        assert_eq!(dim, DimCompo::X);
        // fst side has no offset.
        let fst = b
            .split(DimCompo::X, Nat::lit(24), Side::Fst)
            .unwrap()
            .forall(DimCompo::X)
            .unwrap();
        let sel_fst = SelectStep {
            exec: fst,
            level_index: 2,
        };
        assert_eq!(sel_fst.coord_offset().as_lit(), Some(0));
    }

    #[test]
    fn display_path() {
        let g = grid_1d(4, 32);
        let b = g.forall(DimCompo::X).unwrap();
        let mut p = PlacePath::new("arr", g);
        p.push(PathStep::Deref);
        p.push(PathStep::View(ViewStep::Group { k: Nat::lit(32) }));
        p.push(PathStep::Select(SelectStep {
            exec: b,
            level_index: 0,
        }));
        p.push(PathStep::Index(Nat::lit(3)));
        assert_eq!(p.to_string(), "arr.*.group::<32>[[block:X]][3]");
    }
}
