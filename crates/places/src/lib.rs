//! Place expressions, views, overlap analysis, and index lowering.
//!
//! This crate implements the machinery behind the paper's Section 3.2 and
//! the `access_safety_check` of Section 4:
//!
//! - [`view`]: the basic views (`group`, `transpose`, `reverse`, `split`,
//!   `map`, plus `windows` and `zip`) of Listing 3 and its extensions,
//!   their typing (shape transformation), the window-overlap predicate,
//!   and the expansion of user-defined composite views such as
//!   `group_by_row`;
//! - [`path`]: *normalized place paths* — a root variable plus a sequence
//!   of projection/deref/index/select/view steps with all names resolved;
//! - [`conflict`]: the syntactic overlap analysis used for the narrowing
//!   check and the access-conflict check of the extended borrow checker;
//! - [`lower`]: compilation of views into raw index arithmetic, performed
//!   in reverse order of application exactly as described in the paper's
//!   Section 5.
//!
//! Warp- and lane-level selects (from `to_warps` scheduling) flow through
//! the same machinery: a [`SelectStep`] over a warp or lane forall level
//! lowers to a `threadIdx.x / 32` or `threadIdx.x % 32` coordinate, and
//! the narrowing and conflict checks count warp/lane levels exactly like
//! block/thread levels — which is why an intra-warp shuffle exchange
//! needs no barrier while a cross-warp memory exchange still conflicts.

#![deny(missing_docs)]

pub mod conflict;
pub mod lower;
pub mod path;
pub mod view;

pub use conflict::{may_overlap, may_race, narrowing_violation, Access, AccessMode};
pub use lower::{lower_scalar_access, simplify_idx, Coord, IdxExpr, DYN_IDX};
pub use path::{PathStep, PlacePath, SelectStep};
pub use view::{
    apply_view, resolve_view_app, windows_overlap, zip_ty, ViewDefs, ViewError, ViewStep,
};
