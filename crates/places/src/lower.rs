//! Lowering of place paths to raw index arithmetic.
//!
//! The paper (Section 5) describes the process: *"When selecting from or
//! indexing into a view, these indices are transformed to express the
//! access patterns these views describe. This process is performed in
//! reversed order, starting with the view that was applied last. Each view
//! takes the previous index and transforms it until the resulting index
//! expresses a combination of all views."*
//!
//! We walk the path backwards, collecting the multi-index contributed by
//! select and index steps, and rewrite it through each view:
//!
//! ```text
//! group::<k>       : (g, j, rest...)  ->  (g*k + j, rest...)
//! transpose        : (i, j, rest...)  ->  (j, i, rest...)
//! reverse          : (i, rest...)     ->  (n-1-i, rest...)
//! split.fst        : (i, rest...)     ->  (i, rest...)
//! split::<p>.snd   : (i, rest...)     ->  (i+p, rest...)
//! map(v)           : (i, rest...)     ->  (i, v(rest...))
//! windows::<w, s>  : (i, j, rest...)  ->  (i*s + j, rest...)
//! ```
//!
//! `zip` contributes no arithmetic: its projections route the access into
//! one operand's path before lowering, so each component keeps its own
//! base buffer. An unprojected zip cannot be lowered.
//!
//! Finally the multi-index is flattened row-major against the root array's
//! dimensions, yielding a single linear element offset.

use crate::path::{PathStep, PlacePath};
use crate::view::ViewStep;
use descend_ast::ty::DimCompo;
use descend_ast::Nat;
use descend_exec::Space;
use std::fmt;
use std::ops::{Add, Mul, Sub};

/// The reserved nat-variable name standing for the *dynamic* element
/// index of an atomic scatter (`atomic_add(p, i, e)`): the type checker
/// extends the target path with `Index(Nat::Var(DYN_IDX))`, the path
/// lowers through the one shared `lower_scalar_access` pipeline like any
/// static index, and code generation substitutes the runtime index
/// expression for the sentinel afterwards. Keeping the sentinel inside
/// the normal lowering is what lets every backend and the simulator share
/// one address computation even for data-dependent targets.
pub const DYN_IDX: &str = "__atomic_idx";

/// A coordinate source: which hardware index a select compiles to.
///
/// `Block`/`X` is CUDA's `blockIdx.x`, `Thread`/`Y` is `threadIdx.y`, and
/// so on. `offset` is subtracted to obtain branch-local coordinates under
/// `split` (see [`crate::path::SelectStep::coord_offset`]).
#[derive(Clone, Debug, PartialEq)]
pub struct Coord {
    /// Block or thread space.
    pub space: Space,
    /// The hardware dimension.
    pub dim: DimCompo,
    /// Offset subtracted from the raw coordinate.
    pub offset: Nat,
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let base = match (self.space, self.dim) {
            (Space::Block, DimCompo::X) => "blockIdx.x",
            (Space::Block, DimCompo::Y) => "blockIdx.y",
            (Space::Block, DimCompo::Z) => "blockIdx.z",
            (Space::Thread, DimCompo::X) => "threadIdx.x",
            (Space::Thread, DimCompo::Y) => "threadIdx.y",
            (Space::Thread, DimCompo::Z) => "threadIdx.z",
            // Warps and lanes factor the 1-D thread space (`to_warps`
            // requires X), so their coordinates derive from threadIdx.x.
            (Space::Warp, _) => "(threadIdx.x / 32)",
            (Space::Lane, _) => "(threadIdx.x % 32)",
        };
        if self.offset.as_lit() == Some(0) {
            write!(f, "{base}")
        } else {
            write!(f, "({base} - {})", self.offset)
        }
    }
}

/// A symbolic index expression over coordinates, nat variables (for-nat
/// loop variables) and constants.
#[derive(Clone, Debug, PartialEq)]
pub enum IdxExpr {
    /// A constant.
    Const(u64),
    /// A nat variable (a for-nat loop variable surviving to runtime).
    Var(String),
    /// A hardware coordinate.
    Coord(Coord),
    /// Addition.
    Add(Box<IdxExpr>, Box<IdxExpr>),
    /// Subtraction (used by `reverse`; guaranteed non-negative by typing).
    Sub(Box<IdxExpr>, Box<IdxExpr>),
    /// Multiplication.
    Mul(Box<IdxExpr>, Box<IdxExpr>),
}

impl IdxExpr {
    /// Converts a nat into an index expression.
    pub fn from_nat(n: &Nat) -> IdxExpr {
        match n {
            Nat::Lit(v) => IdxExpr::Const(*v),
            Nat::Var(x) => IdxExpr::Var(x.clone()),
            Nat::Add(a, b) => IdxExpr::add(IdxExpr::from_nat(a), IdxExpr::from_nat(b)),
            Nat::Sub(a, b) => IdxExpr::sub(IdxExpr::from_nat(a), IdxExpr::from_nat(b)),
            Nat::Mul(a, b) => IdxExpr::mul(IdxExpr::from_nat(a), IdxExpr::from_nat(b)),
            // Division/modulo in index positions only arise from nats that
            // normalize away (checked by the caller); fall back to the
            // simplified form.
            Nat::Div(..) | Nat::Mod(..) => {
                let s = n.simplify();
                match s {
                    Nat::Div(..) | Nat::Mod(..) => {
                        panic!("cannot lower opaque division/modulo `{n}` to an index")
                    }
                    other => IdxExpr::from_nat(&other),
                }
            }
        }
    }

    /// Evaluates the expression.
    ///
    /// `coords` supplies raw hardware coordinates; `vars` supplies values
    /// of loop variables.
    ///
    /// # Errors
    ///
    /// Returns an error for unbound variables or negative intermediate
    /// results.
    pub fn eval(
        &self,
        coords: &dyn Fn(Space, DimCompo) -> u64,
        vars: &dyn Fn(&str) -> Option<u64>,
    ) -> Result<u64, String> {
        match self {
            IdxExpr::Const(v) => Ok(*v),
            IdxExpr::Var(x) => vars(x).ok_or_else(|| format!("unbound index variable `{x}`")),
            IdxExpr::Coord(c) => {
                let raw = coords(c.space, c.dim);
                let off = c.offset.eval(&|x| vars(x)).map_err(|e| e.to_string())?;
                raw.checked_sub(off)
                    .ok_or_else(|| format!("negative branch-local coordinate: {raw} - {off}"))
            }
            IdxExpr::Add(a, b) => Ok(a.eval(coords, vars)? + b.eval(coords, vars)?),
            IdxExpr::Sub(a, b) => {
                let (x, y) = (a.eval(coords, vars)?, b.eval(coords, vars)?);
                x.checked_sub(y)
                    .ok_or_else(|| format!("negative index: {x} - {y}"))
            }
            IdxExpr::Mul(a, b) => Ok(a.eval(coords, vars)? * b.eval(coords, vars)?),
        }
    }
}

/// Smart constructor folding constants.
impl std::ops::Add for IdxExpr {
    type Output = IdxExpr;
    fn add(self, rhs: IdxExpr) -> IdxExpr {
        match (self, rhs) {
            (IdxExpr::Const(0), x) | (x, IdxExpr::Const(0)) => x,
            (IdxExpr::Const(x), IdxExpr::Const(y)) => IdxExpr::Const(x + y),
            (a, b) => IdxExpr::Add(Box::new(a), Box::new(b)),
        }
    }
}

/// Smart constructor folding constants; panics on constant underflow.
impl std::ops::Sub for IdxExpr {
    type Output = IdxExpr;
    fn sub(self, rhs: IdxExpr) -> IdxExpr {
        match (self, rhs) {
            (x, IdxExpr::Const(0)) => x,
            (IdxExpr::Const(x), IdxExpr::Const(y)) => {
                IdxExpr::Const(x.checked_sub(y).expect("index subtraction underflow"))
            }
            (a, b) => IdxExpr::Sub(Box::new(a), Box::new(b)),
        }
    }
}

/// Smart constructor folding constants.
impl std::ops::Mul for IdxExpr {
    type Output = IdxExpr;
    fn mul(self, rhs: IdxExpr) -> IdxExpr {
        match (self, rhs) {
            (IdxExpr::Const(1), x) | (x, IdxExpr::Const(1)) => x,
            (IdxExpr::Const(0), _) | (_, IdxExpr::Const(0)) => IdxExpr::Const(0),
            (IdxExpr::Const(x), IdxExpr::Const(y)) => IdxExpr::Const(x * y),
            (a, b) => IdxExpr::Mul(Box::new(a), Box::new(b)),
        }
    }
}

impl fmt::Display for IdxExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IdxExpr::Const(v) => write!(f, "{v}"),
            IdxExpr::Var(x) => write!(f, "{x}"),
            IdxExpr::Coord(c) => write!(f, "{c}"),
            IdxExpr::Add(a, b) => write!(f, "({a} + {b})"),
            IdxExpr::Sub(a, b) => write!(f, "({a} - {b})"),
            IdxExpr::Mul(a, b) => write!(f, "({a} * {b})"),
        }
    }
}

/// Errors from lowering a place path.
#[derive(Clone, Debug, PartialEq)]
pub enum LowerError {
    /// The access does not reach a scalar (too few indices).
    NotScalar {
        /// Number of indices collected.
        collected: usize,
        /// Root rank required.
        required: usize,
    },
    /// A view required more indices than the access provides.
    TooFewIndices(String),
    /// An unprojected split view remained in the path.
    UnprojectedSplit,
    /// An unprojected zip remained in the path.
    UnprojectedZip,
    /// Tuple projections of real tuples cannot be lowered to flat offsets.
    TupleProjection,
    /// A nat could not be converted (opaque division).
    OpaqueNat(String),
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::NotScalar {
                collected,
                required,
            } => write!(
                f,
                "access provides {collected} indices but the array has rank {required}"
            ),
            LowerError::TooFewIndices(v) => {
                write!(f, "view `{v}` needs more indices than the access provides")
            }
            LowerError::UnprojectedSplit => {
                write!(f, "cannot lower an unprojected split view")
            }
            LowerError::UnprojectedZip => {
                write!(f, "cannot lower an unprojected zip; project with `.0`/`.1`")
            }
            LowerError::TupleProjection => {
                write!(f, "cannot lower tuple projections to a flat offset")
            }
            LowerError::OpaqueNat(n) => write!(f, "cannot lower opaque nat `{n}`"),
        }
    }
}

impl std::error::Error for LowerError {}

fn nat_to_idx(n: &Nat) -> Result<IdxExpr, LowerError> {
    let s = n.simplify();
    if matches!(s, Nat::Div(..) | Nat::Mod(..)) {
        return Err(LowerError::OpaqueNat(n.to_string()));
    }
    fn conv(n: &Nat) -> Result<IdxExpr, LowerError> {
        Ok(match n {
            Nat::Lit(v) => IdxExpr::Const(*v),
            Nat::Var(x) => IdxExpr::Var(x.clone()),
            Nat::Add(a, b) => IdxExpr::add(conv(a)?, conv(b)?),
            Nat::Sub(a, b) => IdxExpr::sub(conv(a)?, conv(b)?),
            Nat::Mul(a, b) => IdxExpr::mul(conv(a)?, conv(b)?),
            Nat::Div(..) | Nat::Mod(..) => return Err(LowerError::OpaqueNat(n.to_string())),
        })
    }
    conv(&s)
}

/// Rewrites the multi-index backwards through one view step.
fn apply_view_backward(step: &ViewStep, idx: &mut Vec<IdxExpr>) -> Result<(), LowerError> {
    match step {
        ViewStep::Group { k } => {
            if idx.len() < 2 {
                return Err(LowerError::TooFewIndices("group".into()));
            }
            let g = idx.remove(0);
            let j = idx.remove(0);
            let k = nat_to_idx(k)?;
            idx.insert(0, IdxExpr::add(IdxExpr::mul(g, k), j));
        }
        ViewStep::Transpose => {
            if idx.len() < 2 {
                return Err(LowerError::TooFewIndices("transpose".into()));
            }
            idx.swap(0, 1);
        }
        ViewStep::Reverse { n } => {
            if idx.is_empty() {
                return Err(LowerError::TooFewIndices("reverse".into()));
            }
            let n = nat_to_idx(&(n.clone() - Nat::lit(1)).simplify())?;
            let i = idx.remove(0);
            idx.insert(0, IdxExpr::sub(n, i));
        }
        ViewStep::SplitAt { .. } => return Err(LowerError::UnprojectedSplit),
        ViewStep::SplitPart { pos, side } => {
            if idx.is_empty() {
                return Err(LowerError::TooFewIndices("split".into()));
            }
            if *side == descend_exec::Side::Snd {
                let p = nat_to_idx(pos)?;
                let i = idx.remove(0);
                idx.insert(0, IdxExpr::add(i, p));
            }
        }
        ViewStep::Map(inner) => {
            if idx.is_empty() {
                return Err(LowerError::TooFewIndices("map".into()));
            }
            let head = idx.remove(0);
            for s in inner.iter().rev() {
                apply_view_backward(s, idx)?;
            }
            idx.insert(0, head);
        }
        ViewStep::Windows { s, .. } => {
            if idx.len() < 2 {
                return Err(LowerError::TooFewIndices("windows".into()));
            }
            let i = idx.remove(0);
            let j = idx.remove(0);
            let s = nat_to_idx(s)?;
            idx.insert(0, IdxExpr::add(IdxExpr::mul(i, s), j));
        }
        ViewStep::Zip => return Err(LowerError::UnprojectedZip),
    }
    Ok(())
}

/// An atom of the linear normal form.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum LinAtom {
    Coord(Space, DimCompo),
    Var(String),
}

/// Converts to a linear combination `Σ coeff·atom + const`, or `None`
/// when the expression is not linear (never the case for view lowerings,
/// which compose affine index transformations).
fn to_linear(e: &IdxExpr) -> Option<(std::collections::BTreeMap<LinAtom, i64>, i64)> {
    use std::collections::BTreeMap;
    Some(match e {
        IdxExpr::Const(v) => (BTreeMap::new(), i64::try_from(*v).ok()?),
        IdxExpr::Var(x) => {
            let mut m = BTreeMap::new();
            m.insert(LinAtom::Var(x.clone()), 1);
            (m, 0)
        }
        IdxExpr::Coord(c) => {
            let off = i64::try_from(c.offset.as_lit()?).ok()?;
            let mut m = BTreeMap::new();
            m.insert(LinAtom::Coord(c.space, c.dim), 1);
            (m, -off)
        }
        IdxExpr::Add(a, b) => {
            let (mut ma, ca) = to_linear(a)?;
            let (mb, cb) = to_linear(b)?;
            for (k, v) in mb {
                *ma.entry(k).or_insert(0) += v;
            }
            (ma, ca + cb)
        }
        IdxExpr::Sub(a, b) => {
            let (mut ma, ca) = to_linear(a)?;
            let (mb, cb) = to_linear(b)?;
            for (k, v) in mb {
                *ma.entry(k).or_insert(0) -= v;
            }
            (ma, ca - cb)
        }
        IdxExpr::Mul(a, b) => {
            let (ma, ca) = to_linear(a)?;
            let (mb, cb) = to_linear(b)?;
            if ma.is_empty() {
                (mb.into_iter().map(|(k, v)| (k, v * ca)).collect(), ca * cb)
            } else if mb.is_empty() {
                (ma.into_iter().map(|(k, v)| (k, v * cb)).collect(), ca * cb)
            } else {
                return None;
            }
        }
    })
}

fn atom_to_idx(a: &LinAtom) -> IdxExpr {
    match a {
        LinAtom::Coord(space, dim) => IdxExpr::Coord(Coord {
            space: *space,
            dim: *dim,
            offset: Nat::lit(0),
        }),
        LinAtom::Var(x) => IdxExpr::Var(x.clone()),
    }
}

/// Simplifies an index expression by normalizing to a linear combination,
/// folding away branch offsets that cancel (`(tid - k) + k` becomes
/// `tid`), exactly like a production compiler would.
pub fn simplify_idx(e: IdxExpr) -> IdxExpr {
    let Some((terms, konst)) = to_linear(&e) else {
        return e;
    };
    let mut pos: Option<IdxExpr> = None;
    let mut neg: Option<IdxExpr> = None;
    let push = |side: &mut Option<IdxExpr>, term: IdxExpr| {
        *side = Some(match side.take() {
            None => term,
            Some(acc) => IdxExpr::add(acc, term),
        });
    };
    for (atom, coeff) in &terms {
        if *coeff == 0 {
            continue;
        }
        let base = atom_to_idx(atom);
        let term = if coeff.unsigned_abs() == 1 {
            base
        } else {
            IdxExpr::mul(base, IdxExpr::Const(coeff.unsigned_abs()))
        };
        if *coeff > 0 {
            push(&mut pos, term);
        } else {
            push(&mut neg, term);
        }
    }
    if konst > 0 {
        push(&mut pos, IdxExpr::Const(konst as u64));
    } else if konst < 0 {
        push(&mut neg, IdxExpr::Const(konst.unsigned_abs()));
    }
    match (pos, neg) {
        (None, None) => IdxExpr::Const(0),
        (Some(p), None) => p,
        (Some(p), Some(n)) => IdxExpr::Sub(Box::new(p), Box::new(n)),
        // A purely negative index cannot occur at runtime for a valid
        // access; keep the original shape for transparency.
        (None, Some(_)) => e,
    }
}

/// Lowers a scalar access through a place path to a linear element offset
/// into the root array.
///
/// `root_dims` are the dimension sizes of the root array type, outermost
/// first (e.g. `[2048, 2048]` for `[[f64; 2048]; 2048]`). Leading `Deref`
/// steps are skipped (the reference itself contributes no indexing).
/// The result is simplified to linear normal form (see [`simplify_idx`]).
///
/// # Errors
///
/// Returns a [`LowerError`] if the access is not scalar, contains real
/// tuple projections, or an unprojected split.
pub fn lower_scalar_access(path: &PlacePath, root_dims: &[Nat]) -> Result<IdxExpr, LowerError> {
    let mut idx: Vec<IdxExpr> = Vec::new();
    for step in path.steps.iter().rev() {
        match step {
            PathStep::Deref => {}
            PathStep::Proj(_) => return Err(LowerError::TupleProjection),
            PathStep::Index(n) => idx.insert(0, nat_to_idx(n)?),
            PathStep::Select(sel) => {
                let (space, dim) = sel.space_dim();
                idx.insert(
                    0,
                    IdxExpr::Coord(Coord {
                        space,
                        dim,
                        offset: sel.coord_offset(),
                    }),
                );
            }
            PathStep::View(v) => apply_view_backward(v, &mut idx)?,
        }
    }
    if idx.len() != root_dims.len() {
        return Err(LowerError::NotScalar {
            collected: idx.len(),
            required: root_dims.len(),
        });
    }
    let mut flat = IdxExpr::Const(0);
    for (i, d) in idx.into_iter().zip(root_dims) {
        flat = IdxExpr::add(IdxExpr::mul(flat, nat_to_idx(d)?), i);
    }
    Ok(simplify_idx(flat))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::SelectStep;
    use descend_ast::ty::Dim;
    use descend_exec::{ExecExpr, Side};

    fn thread_exec_1d(threads: u64) -> ExecExpr {
        ExecExpr::grid(Dim::x(1u64), Dim::x(threads))
            .forall(DimCompo::X)
            .unwrap()
            .forall(DimCompo::X)
            .unwrap()
    }

    fn select(exec: &ExecExpr, level: usize) -> PathStep {
        PathStep::Select(SelectStep {
            exec: exec.clone(),
            level_index: level,
        })
    }

    /// Figure 4 of the paper: `array.group::<8>.transpose[[thread]][i]`
    /// on a 32-element array accessed by 8 threads: thread `t`, iteration
    /// `i` touches element `i*8 + t`.
    #[test]
    fn figure_4_group_transpose() {
        let t = thread_exec_1d(8);
        let mut p = PlacePath::new("array", ExecExpr::grid(Dim::x(1u64), Dim::x(8u64)));
        p.push(PathStep::View(ViewStep::Group { k: Nat::lit(8) }));
        p.push(PathStep::View(ViewStep::Transpose));
        p.push(select(&t, 1));
        p.push(PathStep::Index(Nat::var("i")));
        let flat = lower_scalar_access(&p, &[Nat::lit(32)]).unwrap();
        for tid in 0..8u64 {
            for i in 0..4u64 {
                let got = flat
                    .eval(&|_, _| tid, &|x| (x == "i").then_some(i))
                    .unwrap();
                assert_eq!(got, i * 8 + tid, "thread {tid}, i {i}");
            }
        }
    }

    #[test]
    fn reverse_lowering() {
        let t = thread_exec_1d(32);
        let mut p = PlacePath::new("arr", ExecExpr::grid(Dim::x(1u64), Dim::x(32u64)));
        p.push(PathStep::View(ViewStep::Reverse { n: Nat::lit(32) }));
        p.push(select(&t, 1));
        let flat = lower_scalar_access(&p, &[Nat::lit(32)]).unwrap();
        for tid in 0..32u64 {
            assert_eq!(flat.eval(&|_, _| tid, &|_| None).unwrap(), 31 - tid);
        }
    }

    #[test]
    fn split_snd_offsets() {
        let _t = thread_exec_1d(32);
        let mut p = PlacePath::new("arr", ExecExpr::grid(Dim::x(1u64), Dim::x(32u64)));
        p.push(PathStep::View(ViewStep::SplitAt { pos: Nat::lit(24) }));
        p.push(PathStep::Proj(1));
        p.push(PathStep::Index(Nat::lit(3)));
        let flat = lower_scalar_access(&p, &[Nat::lit(32)]).unwrap();
        assert_eq!(flat.eval(&|_, _| 0, &|_| None).unwrap(), 27);
    }

    #[test]
    fn nested_group_map_transpose_matches_manual() {
        // group::<8>.map(transpose) on a (32,32) matrix: [g][c][r] ->
        // row 8g + r, column c.
        let mut p = PlacePath::new("m", ExecExpr::cpu_thread());
        p.push(PathStep::View(ViewStep::Group { k: Nat::lit(8) }));
        p.push(PathStep::View(ViewStep::Map(vec![ViewStep::Transpose])));
        p.push(PathStep::Index(Nat::var("g")));
        p.push(PathStep::Index(Nat::var("c")));
        p.push(PathStep::Index(Nat::var("r")));
        let flat = lower_scalar_access(&p, &[Nat::lit(32), Nat::lit(32)]).unwrap();
        for g in 0..4u64 {
            for c in 0..32u64 {
                for r in 0..8u64 {
                    let got = flat
                        .eval(&|_, _| 0, &|x| match x {
                            "g" => Some(g),
                            "c" => Some(c),
                            "r" => Some(r),
                            _ => None,
                        })
                        .unwrap();
                    assert_eq!(got, (8 * g + r) * 32 + c);
                }
            }
        }
    }

    #[test]
    fn tiles_view_lowering_matches_tile_coordinates() {
        // tiles<32,32> = group::<32>.map(map(group::<32>)).map(transpose)
        // on (128, 128): [a][b][r][c] -> element (a*32+r, b*32+c).
        let steps = vec![
            ViewStep::Group { k: Nat::lit(32) },
            ViewStep::Map(vec![ViewStep::Map(vec![ViewStep::Group {
                k: Nat::lit(32),
            }])]),
            ViewStep::Map(vec![ViewStep::Transpose]),
        ];
        let mut p = PlacePath::new("m", ExecExpr::cpu_thread());
        for s in steps {
            p.push(PathStep::View(s));
        }
        for v in ["a", "b", "r", "c"] {
            p.push(PathStep::Index(Nat::var(v)));
        }
        let flat = lower_scalar_access(&p, &[Nat::lit(128), Nat::lit(128)]).unwrap();
        for (a, b, r, c) in [(0, 0, 0, 0), (1, 2, 3, 4), (3, 3, 31, 31), (2, 0, 16, 7)] {
            let got = flat
                .eval(&|_, _| 0, &|x| match x {
                    "a" => Some(a),
                    "b" => Some(b),
                    "r" => Some(r),
                    "c" => Some(c),
                    _ => None,
                })
                .unwrap();
            assert_eq!(got, (a * 32 + r) * 128 + (b * 32 + c));
        }
    }

    #[test]
    fn branch_local_coordinates_subtract_offset() {
        // Threads 24..32 of a 32-thread block select from an 8-element
        // region: thread 27 has branch-local coordinate 3.
        let b = ExecExpr::grid(Dim::x(1u64), Dim::x(32u64))
            .forall(DimCompo::X)
            .unwrap();
        let snd_threads = b
            .split(DimCompo::X, Nat::lit(24), Side::Snd)
            .unwrap()
            .forall(DimCompo::X)
            .unwrap();
        let mut p = PlacePath::new("arr", b);
        p.push(select(&snd_threads, 2));
        let flat = lower_scalar_access(&p, &[Nat::lit(8)]).unwrap();
        assert_eq!(flat.eval(&|_, _| 27, &|_| None).unwrap(), 3);
    }

    /// Warp and lane selects lower to `tid / 32` and `tid % 32`
    /// coordinates; evaluating them against a linear thread id
    /// reproduces the warp-major element order.
    #[test]
    fn warp_lane_selects_lower_to_div_mod_coords() {
        let b = ExecExpr::grid(Dim::x(1u64), Dim::x(64u64))
            .forall(DimCompo::X)
            .unwrap();
        let lanes = b
            .to_warps()
            .unwrap()
            .forall(DimCompo::X)
            .unwrap()
            .forall(DimCompo::X)
            .unwrap();
        let mut p = PlacePath::new("tmp", b);
        p.push(PathStep::View(ViewStep::Group { k: Nat::lit(32) }));
        p.push(select(&lanes, 2));
        p.push(select(&lanes, 3));
        let flat = lower_scalar_access(&p, &[Nat::lit(64)]).unwrap();
        let coords = |tid: u64| {
            move |space: Space, _dim| match space {
                Space::Warp => tid / 32,
                Space::Lane => tid % 32,
                _ => tid,
            }
        };
        for tid in 0..64u64 {
            let got = flat.eval(&coords(tid), &|_| None).unwrap();
            assert_eq!(got, (tid / 32) * 32 + tid % 32);
            assert_eq!(got, tid, "warp-major order is the identity here");
        }
    }

    #[test]
    fn warp_coord_display_spells_div_mod() {
        let w = IdxExpr::Coord(Coord {
            space: Space::Warp,
            dim: DimCompo::X,
            offset: Nat::lit(0),
        });
        let l = IdxExpr::Coord(Coord {
            space: Space::Lane,
            dim: DimCompo::X,
            offset: Nat::lit(1),
        });
        assert_eq!(w.to_string(), "(threadIdx.x / 32)");
        assert_eq!(l.to_string(), "((threadIdx.x % 32) - 1)");
    }

    /// `windows::<w, s>` lowers window `i`, offset `j` to `i*s + j`.
    #[test]
    fn windows_lowering_is_strided() {
        let mut p = PlacePath::new("arr", ExecExpr::cpu_thread());
        p.push(PathStep::View(ViewStep::Windows {
            w: Nat::lit(3),
            s: Nat::lit(2),
        }));
        p.push(PathStep::Index(Nat::var("i")));
        p.push(PathStep::Index(Nat::var("j")));
        let flat = lower_scalar_access(&p, &[Nat::lit(9)]).unwrap();
        for i in 0..4u64 {
            for j in 0..3u64 {
                let got = flat
                    .eval(&|_, _| 0, &|x| match x {
                        "i" => Some(i),
                        "j" => Some(j),
                        _ => None,
                    })
                    .unwrap();
                assert_eq!(got, i * 2 + j);
            }
        }
    }

    /// A windows select by threads composes with inner indices: thread
    /// `t`'s 3-wide stencil window at stride 1 covers `t`, `t+1`, `t+2`.
    #[test]
    fn windows_select_composes_with_group() {
        let t = thread_exec_1d(8);
        for k in 0..3u64 {
            let mut p = PlacePath::new("tile", ExecExpr::grid(Dim::x(1u64), Dim::x(8u64)));
            p.push(PathStep::View(ViewStep::Windows {
                w: Nat::lit(3),
                s: Nat::lit(1),
            }));
            p.push(select(&t, 1));
            p.push(PathStep::Index(Nat::lit(k)));
            let flat = lower_scalar_access(&p, &[Nat::lit(10)]).unwrap();
            for tid in 0..8u64 {
                assert_eq!(flat.eval(&|_, _| tid, &|_| None).unwrap(), tid + k);
            }
        }
    }

    #[test]
    fn unprojected_zip_rejected() {
        let mut p = PlacePath::new("pair", ExecExpr::cpu_thread());
        p.push(PathStep::View(ViewStep::Zip));
        p.push(PathStep::Index(Nat::lit(0)));
        let err = lower_scalar_access(&p, &[Nat::lit(8)]).unwrap_err();
        assert!(matches!(err, LowerError::UnprojectedZip));
    }

    #[test]
    fn rank_mismatch_detected() {
        let mut p = PlacePath::new("m", ExecExpr::cpu_thread());
        p.push(PathStep::Index(Nat::lit(0)));
        let err = lower_scalar_access(&p, &[Nat::lit(8), Nat::lit(8)]).unwrap_err();
        assert!(matches!(
            err,
            LowerError::NotScalar {
                collected: 1,
                required: 2
            }
        ));
    }

    #[test]
    fn unprojected_split_rejected() {
        let mut p = PlacePath::new("m", ExecExpr::cpu_thread());
        p.steps
            .push(PathStep::View(ViewStep::SplitAt { pos: Nat::lit(4) }));
        p.push(PathStep::Index(Nat::lit(0)));
        let err = lower_scalar_access(&p, &[Nat::lit(8)]).unwrap_err();
        assert!(matches!(err, LowerError::UnprojectedSplit));
    }

    #[test]
    fn constant_folding_in_idx() {
        let e = IdxExpr::add(
            IdxExpr::mul(IdxExpr::Const(3), IdxExpr::Const(4)),
            IdxExpr::Const(5),
        );
        assert_eq!(e, IdxExpr::Const(17));
        assert_eq!(
            IdxExpr::mul(IdxExpr::Const(0), IdxExpr::Var("x".into())),
            IdxExpr::Const(0)
        );
        assert_eq!(
            IdxExpr::add(IdxExpr::Const(0), IdxExpr::Var("x".into())),
            IdxExpr::Var("x".into())
        );
    }

    #[test]
    fn deref_steps_are_transparent() {
        let t = thread_exec_1d(4);
        let mut p = PlacePath::new("r", ExecExpr::grid(Dim::x(1u64), Dim::x(4u64)));
        p.push(PathStep::Deref);
        p.push(select(&t, 1));
        let flat = lower_scalar_access(&p, &[Nat::lit(4)]).unwrap();
        assert_eq!(flat.eval(&|_, _| 2, &|_| None).unwrap(), 2);
    }
}
