//! Syntactic overlap and conflict analysis.
//!
//! This module implements the two GPU-specific legs of the paper's
//! `access_safety_check` (Section 4):
//!
//! 1. **Narrowing check** ([`narrowing_violation`]): a unique access by an
//!    execution resource must *select* once for every forall level
//!    introduced below the owner of the accessed memory — otherwise
//!    multiple sibling resources would gain overlapping unique access
//!    (the paper's Section 3.3 examples).
//! 2. **Access conflict check** ([`may_race`]): a new access must not
//!    conflict with a previously recorded access by a potentially
//!    concurrent execution resource. Places are compared syntactically:
//!    provably disjoint prefixes (distinct tuple projections, distinct
//!    literal indices, non-overlapping split parts) rule a conflict out;
//!    identical chains are safe precisely when their selects cover every
//!    forall level on which two distinct executors could disagree; any
//!    other shape is conservatively a conflict — exactly the reasoning
//!    that rejects the paper's `arr[[thread]] = arr.rev[[thread]]`.

use crate::path::{PathStep, PlacePath};
use crate::view::{windows_overlap, ViewStep};
use descend_ast::Span;
use descend_exec::{ExecBase, ExecExpr, ForallLevel, Side};
use std::fmt;

/// Whether an access reads or writes (mirrors shared/unique borrows).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessMode {
    /// Shared (read) access.
    Shrd,
    /// Unique (write) access.
    Uniq,
    /// Atomic read-modify-write access. Like `Uniq` it mutates, but the
    /// hardware serializes concurrent atomics to one location, so two
    /// atomic accesses never race with *each other* — they are exempt
    /// from narrowing and from atomic–atomic conflicts, while
    /// atomic–plain pairs still conflict.
    Atomic,
}

impl fmt::Display for AccessMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessMode::Shrd => write!(f, "shrd"),
            AccessMode::Uniq => write!(f, "uniq"),
            AccessMode::Atomic => write!(f, "atomic"),
        }
    }
}

/// A recorded memory access: the paper's access environment `A` maps
/// execution resources to sets of these.
#[derive(Clone, Debug)]
pub struct Access {
    /// The accessed place.
    pub path: PlacePath,
    /// Read or write.
    pub mode: AccessMode,
    /// The execution resource performing the access.
    pub exec: ExecExpr,
    /// Source location, for diagnostics.
    pub span: Span,
    /// Rendered place expression, for diagnostics.
    pub display: String,
}

/// Result of a narrowing check: the forall levels that the access fails
/// to select for.
#[derive(Clone, Debug, PartialEq)]
pub struct MissingLevels {
    /// Uncovered levels (in scheduling order).
    pub missing: Vec<ForallLevel>,
}

/// Checks the narrowing rule for a unique access: every forall level of
/// `exec` beyond the owner of the place's root must be covered by a
/// select in the path.
///
/// Returns `None` if narrowing is satisfied, or the uncovered levels.
/// Shared accesses never violate narrowing (reads may be replicated).
pub fn narrowing_violation(
    path: &PlacePath,
    mode: AccessMode,
    exec: &ExecExpr,
) -> Option<MissingLevels> {
    // Shared accesses may be replicated; atomic accesses are the typed
    // escape hatch from narrowing — the hardware serializes them.
    if mode != AccessMode::Uniq {
        return None;
    }
    let levels = exec.levels_beyond(&path.owner)?;
    let missing: Vec<ForallLevel> = levels
        .into_iter()
        .filter(|lvl| {
            // A level with extent 1 has a single sub-resource; no
            // distribution is needed.
            if lvl.extent.as_lit() == Some(1) {
                return false;
            }
            !path.selects().any(|sel| {
                sel.level_index == lvl.op_index && exec_prefix_same(&sel.exec, exec, lvl.op_index)
            })
        })
        .collect();
    if missing.is_empty() {
        None
    } else {
        Some(MissingLevels { missing })
    }
}

/// Whether the op prefixes (up to and including `idx`) of two exec
/// expressions coincide.
fn exec_prefix_same(a: &ExecExpr, b: &ExecExpr, idx: usize) -> bool {
    if a.ops.len() <= idx || b.ops.len() <= idx {
        return false;
    }
    let pa = ExecExpr {
        base: a.base.clone(),
        ops: a.ops[..=idx].to_vec(),
    };
    let pb = ExecExpr {
        base: b.base.clone(),
        ops: b.ops[..=idx].to_vec(),
    };
    pa.same(&pb)
}

/// Outcome of comparing two steps during the pairwise walk.
enum StepCmp {
    /// Steps denote the same index transformation; continue walking.
    Equal,
    /// The regions reached through these steps are provably disjoint.
    Disjoint,
    /// Nothing can be concluded; conservatively overlapping.
    Unknown,
}

fn compare_steps(a: &PathStep, b: &PathStep) -> StepCmp {
    match (a, b) {
        (PathStep::Deref, PathStep::Deref) => StepCmp::Equal,
        (PathStep::Proj(i), PathStep::Proj(j)) => {
            if i == j {
                StepCmp::Equal
            } else {
                StepCmp::Disjoint
            }
        }
        (PathStep::Index(n1), PathStep::Index(n2)) => {
            if n1.equal(n2) {
                StepCmp::Equal
            } else if let (Some(a), Some(b)) = (n1.as_lit(), n2.as_lit()) {
                debug_assert_ne!(a, b, "equal literals are nat-equal");
                StepCmp::Disjoint
            } else {
                StepCmp::Unknown
            }
        }
        (PathStep::Select(s1), PathStep::Select(s2)) => {
            if s1.same_level(s2) {
                StepCmp::Equal
            } else {
                StepCmp::Unknown
            }
        }
        (PathStep::View(v1), PathStep::View(v2)) => compare_views(v1, v2),
        _ => StepCmp::Unknown,
    }
}

fn compare_views(a: &ViewStep, b: &ViewStep) -> StepCmp {
    match (a, b) {
        (ViewStep::SplitPart { pos: p1, side: s1 }, ViewStep::SplitPart { pos: p2, side: s2 }) => {
            if p1.equal(p2) && s1 == s2 {
                return StepCmp::Equal;
            }
            // fst covers [0, p1), snd covers [p2, n): disjoint iff the fst
            // bound does not exceed the snd bound.
            let disjoint = match (s1, s2) {
                (Side::Fst, Side::Snd) => {
                    p1.equal(p2)
                        || matches!((p1.as_lit(), p2.as_lit()), (Some(x), Some(y)) if x <= y)
                }
                (Side::Snd, Side::Fst) => {
                    p1.equal(p2)
                        || matches!((p1.as_lit(), p2.as_lit()), (Some(x), Some(y)) if y <= x)
                }
                _ => false,
            };
            if disjoint {
                StepCmp::Disjoint
            } else {
                StepCmp::Unknown
            }
        }
        (ViewStep::Windows { w: w1, s: s1 }, ViewStep::Windows { w: w2, s: s2 }) => {
            if !(w1.equal(w2) && s1.equal(s2)) {
                return StepCmp::Unknown;
            }
            // Same windows view. With a non-overlapping stride (s >= w)
            // the windows partition the array like `group` and the later
            // indices/selects decide disjointness. With s < w, distinct
            // window indices alias underlying elements, so nothing past
            // this step can prove disjointness: overlapping reads are
            // fine (the Shrd–Shrd early return never reaches this walk),
            // while any write through an overlapping window conflicts.
            if windows_overlap(w1, s1) {
                StepCmp::Unknown
            } else {
                StepCmp::Equal
            }
        }
        _ => {
            if a.same(b) {
                // `same` is necessary but not sufficient: a view that
                // *contains* an overlapping windows step (e.g.
                // `map(windows::<3, 1>)`) aliases across executors just
                // like a top-level one, so indices past it can prove
                // nothing disjoint.
                if contains_overlapping_windows(a) {
                    StepCmp::Unknown
                } else {
                    StepCmp::Equal
                }
            } else {
                StepCmp::Unknown
            }
        }
    }
}

/// Whether a view step is, or contains (under `map`), an overlapping
/// windows step. Such a step breaks the "equal steps ⇒ later indices
/// decide disjointness" reasoning at any nesting depth.
fn contains_overlapping_windows(v: &ViewStep) -> bool {
    match v {
        ViewStep::Windows { w, s } => windows_overlap(w, s),
        ViewStep::Map(inner) => inner.iter().any(contains_overlapping_windows),
        _ => false,
    }
}

/// Whether two place paths may refer to overlapping memory regions,
/// independent of which executors access them. Used for sequential
/// (same-thread) borrow checking on the CPU side.
///
/// Conservative: `false` means provably disjoint.
pub fn may_overlap(a: &PlacePath, b: &PlacePath) -> bool {
    if a.root != b.root {
        return false;
    }
    let common = a.steps.len().min(b.steps.len());
    for i in 0..common {
        match compare_steps(&a.steps[i], &b.steps[i]) {
            StepCmp::Disjoint => return false,
            StepCmp::Unknown => return true,
            StepCmp::Equal => {}
        }
    }
    true
}

/// Whether two accesses can constitute a data race: two *distinct*
/// executors touching a common address, at least one writing.
///
/// The check is conservative (sound): `false` means provably race-free.
pub fn may_race(a: &Access, b: &Access) -> bool {
    if a.mode == AccessMode::Shrd && b.mode == AccessMode::Shrd {
        return false;
    }
    // Atomic–atomic pairs never race: the hardware serializes them at
    // each location (this is what makes atomics the only way to write a
    // place concurrently). Atomic–plain pairs fall through to the walk.
    if a.mode == AccessMode::Atomic && b.mode == AccessMode::Atomic {
        return false;
    }
    // Distinct roots are distinct allocations.
    if a.path.root != b.path.root {
        return false;
    }
    // A single CPU thread executes sequentially.
    if matches!(a.exec.base, ExecBase::CpuThread) && matches!(b.exec.base, ExecBase::CpuThread) {
        return false;
    }
    // Pairwise step walk.
    let steps_a = &a.path.steps;
    let steps_b = &b.path.steps;
    let common = steps_a.len().min(steps_b.len());
    for i in 0..common {
        match compare_steps(&steps_a[i], &steps_b[i]) {
            StepCmp::Disjoint => return false,
            StepCmp::Unknown => return true,
            StepCmp::Equal => {}
        }
    }
    if steps_a.len() != steps_b.len() {
        // One region contains the other: the shorter access touches the
        // whole region for every executor. Distinct executors overlap
        // unless the remaining steps cannot matter — be conservative.
        return true;
    }
    // Identical chains: safe iff the selects cover every forall level on
    // which two distinct executors could disagree while sharing the root
    // instance, i.e. every level beyond the owner, in both exec contexts.
    if !a.exec.same(&b.exec) {
        // Same chain from different resources (e.g. both split branches
        // writing the same half): selects cannot distinguish executors
        // that disagree only on branch membership.
        return true;
    }
    let Some(levels) = a.exec.levels_beyond(&a.path.owner) else {
        // Owner is not a prefix (should not happen for well-scoped
        // programs); be conservative.
        return true;
    };
    let covered = |lvl: &ForallLevel| {
        if lvl.extent.as_lit() == Some(1) {
            return true;
        }
        a.path.selects().any(|sel| {
            sel.level_index == lvl.op_index && exec_prefix_same(&sel.exec, &a.exec, lvl.op_index)
        })
    };
    !levels.iter().all(covered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::SelectStep;
    use descend_ast::ty::{Dim, DimCompo};
    use descend_ast::Nat;

    fn setup_1d(blocks: u64, threads: u64) -> (ExecExpr, ExecExpr, ExecExpr) {
        let g = ExecExpr::grid(Dim::x(blocks), Dim::x(threads));
        let b = g.forall(DimCompo::X).unwrap();
        let t = b.forall(DimCompo::X).unwrap();
        (g, b, t)
    }

    fn sel(exec: &ExecExpr, level: usize) -> PathStep {
        PathStep::Select(SelectStep {
            exec: exec.clone(),
            level_index: level,
        })
    }

    fn access(path: PlacePath, mode: AccessMode, exec: &ExecExpr) -> Access {
        let display = path.to_string();
        Access {
            path,
            mode,
            exec: exec.clone(),
            span: Span::DUMMY,
            display,
        }
    }

    /// The paper's Section 2.2 example:
    /// `arr[[thread]] = arr.rev[[thread]]` must be flagged.
    #[test]
    fn rev_per_block_race_detected() {
        let (g, b, t) = setup_1d(4, 32);
        let _ = b;
        let mut write = PlacePath::new("arr", g.clone());
        write.push(PathStep::Deref);
        write.push(sel(&t, 0));
        write.push(sel(&t, 1));
        let mut read = PlacePath::new("arr", g.clone());
        read.push(PathStep::Deref);
        read.push(PathStep::View(ViewStep::Reverse { n: Nat::lit(32) }));
        read.push(sel(&t, 0));
        read.push(sel(&t, 1));
        let w = access(write, AccessMode::Uniq, &t);
        let r = access(read, AccessMode::Shrd, &t);
        assert!(may_race(&w, &r));
        assert!(may_race(&r, &w));
    }

    /// Identical fully-selected chains are race-free: each thread touches
    /// its own element.
    #[test]
    fn identical_distributed_chains_are_safe() {
        let (g, _, t) = setup_1d(4, 32);
        let mut p = PlacePath::new("arr", g.clone());
        p.push(PathStep::Deref);
        p.push(PathStep::View(ViewStep::Group { k: Nat::lit(32) }));
        p.push(sel(&t, 0));
        p.push(sel(&t, 1));
        let w = access(p.clone(), AccessMode::Uniq, &t);
        let r = access(p, AccessMode::Shrd, &t);
        assert!(!may_race(&w, &r));
        assert!(!may_race(&w, &w.clone()));
    }

    #[test]
    fn reads_never_race() {
        let (g, _, t) = setup_1d(1, 32);
        let mut a = PlacePath::new("arr", g.clone());
        a.push(PathStep::Deref);
        let mut b = PlacePath::new("arr", g.clone());
        b.push(PathStep::Deref);
        b.push(PathStep::View(ViewStep::Reverse { n: Nat::lit(32) }));
        let ra = access(a, AccessMode::Shrd, &t);
        let rb = access(b, AccessMode::Shrd, &t);
        assert!(!may_race(&ra, &rb));
    }

    #[test]
    fn different_roots_never_race() {
        let (g, _, t) = setup_1d(1, 32);
        let a = access(PlacePath::new("x", g.clone()), AccessMode::Uniq, &t);
        let b = access(PlacePath::new("y", g.clone()), AccessMode::Uniq, &t);
        assert!(!may_race(&a, &b));
    }

    #[test]
    fn literal_indices_disjoint() {
        let (g, _, t) = setup_1d(1, 32);
        let mut a = PlacePath::new("x", g.clone());
        a.push(PathStep::Index(Nat::lit(0)));
        let mut b = PlacePath::new("x", g.clone());
        b.push(PathStep::Index(Nat::lit(1)));
        let wa = access(a, AccessMode::Uniq, &t);
        let wb = access(b, AccessMode::Uniq, &t);
        assert!(!may_race(&wa, &wb));
    }

    #[test]
    fn split_halves_disjoint_but_same_half_races() {
        let (_g, b, _) = setup_1d(1, 64);
        let fst_branch = b.split(DimCompo::X, Nat::lit(32), Side::Fst).unwrap();
        let snd_branch = b.split(DimCompo::X, Nat::lit(32), Side::Snd).unwrap();
        let fst_t = fst_branch.forall(DimCompo::X).unwrap();
        let snd_t = snd_branch.forall(DimCompo::X).unwrap();
        // tmp owned by the block.
        let mk = |side: Side, texec: &ExecExpr| {
            let mut p = PlacePath::new("tmp", b.clone());
            p.push(PathStep::View(ViewStep::SplitPart {
                pos: Nat::lit(32),
                side,
            }));
            p.push(sel(texec, 2));
            access(p, AccessMode::Uniq, texec)
        };
        let w_fst = mk(Side::Fst, &fst_t);
        let w_snd = mk(Side::Snd, &snd_t);
        // Each branch writing its own half: fine.
        assert!(!may_race(&w_fst, &w_snd));
        // Both branches writing the SAME half: race.
        let w_snd_on_fst = mk(Side::Fst, &snd_t);
        assert!(may_race(&w_fst, &w_snd_on_fst));
    }

    /// The scan access pattern: the snd branch reads the shifted lower
    /// region while writing the upper region of a different buffer; the
    /// read of `src` overlaps the fst branch's read — both shared, fine —
    /// but a write to src from the other branch must conflict.
    #[test]
    fn overlapping_split_regions_conflict() {
        let (_g, b, _) = setup_1d(1, 64);
        let fst_t = b
            .split(DimCompo::X, Nat::lit(16), Side::Fst)
            .unwrap()
            .forall(DimCompo::X)
            .unwrap();
        let snd_t = b
            .split(DimCompo::X, Nat::lit(16), Side::Snd)
            .unwrap()
            .forall(DimCompo::X)
            .unwrap();
        // fst writes src.split::<32>.fst (region [0,32)) — 16 threads on a
        // 32-element region would fail select counts, but for the overlap
        // analysis we only care about regions here.
        let mut p1 = PlacePath::new("src", b.clone());
        p1.push(PathStep::View(ViewStep::SplitPart {
            pos: Nat::lit(32),
            side: Side::Fst,
        }));
        p1.push(sel(&fst_t, 2));
        // snd writes src.split::<16>.snd (region [16, 64)) — overlaps.
        let mut p2 = PlacePath::new("src", b.clone());
        p2.push(PathStep::View(ViewStep::SplitPart {
            pos: Nat::lit(16),
            side: Side::Snd,
        }));
        p2.push(sel(&snd_t, 2));
        let a1 = access(p1, AccessMode::Uniq, &fst_t);
        let a2 = access(p2, AccessMode::Uniq, &snd_t);
        assert!(may_race(&a1, &a2));
    }

    #[test]
    fn prefix_containment_races() {
        // Reading the whole array while threads write elements: race.
        let (g, _, t) = setup_1d(1, 32);
        let _ = &g;
        let mut whole = PlacePath::new("arr", g.clone());
        whole.push(PathStep::Deref);
        let mut eachw = PlacePath::new("arr", g.clone());
        eachw.push(PathStep::Deref);
        eachw.push(sel(&t, 0));
        eachw.push(sel(&t, 1));
        let r = access(whole, AccessMode::Shrd, &t);
        let w = access(eachw, AccessMode::Uniq, &t);
        assert!(may_race(&r, &w));
    }

    #[test]
    fn cpu_accesses_are_sequential() {
        let cpu = ExecExpr::cpu_thread();
        let p = PlacePath::new("v", cpu.clone());
        let a = access(p.clone(), AccessMode::Uniq, &cpu);
        let b = access(p, AccessMode::Shrd, &cpu);
        assert!(!may_race(&a, &b));
    }

    /// Narrowing: the paper's Section 3.3 listing.
    #[test]
    fn narrowing_violations_from_paper() {
        let (g, b, t) = setup_1d(32, 32);
        // Line 4: `&uniq *arr` at block level — no selects at all.
        let mut p4 = PlacePath::new("arr", g.clone());
        p4.push(PathStep::Deref);
        let v = narrowing_violation(&p4, AccessMode::Uniq, &b).unwrap();
        assert_eq!(v.missing.len(), 1);
        // Line 6: `&uniq arr.group::<32>[[thread]]` — thread select only,
        // block level uncovered.
        let mut p6 = PlacePath::new("arr", g.clone());
        p6.push(PathStep::Deref);
        p6.push(PathStep::View(ViewStep::Group { k: Nat::lit(32) }));
        p6.push(sel(&t, 1));
        let v = narrowing_violation(&p6, AccessMode::Uniq, &t).unwrap();
        assert_eq!(v.missing.len(), 1);
        assert_eq!(v.missing[0].op_index, 0);
        // Line 8: `arr.group::<32>[[block]][[thread]]` — correct.
        let mut p8 = PlacePath::new("arr", g.clone());
        p8.push(PathStep::Deref);
        p8.push(PathStep::View(ViewStep::Group { k: Nat::lit(32) }));
        p8.push(sel(&t, 0));
        p8.push(sel(&t, 1));
        assert!(narrowing_violation(&p8, AccessMode::Uniq, &t).is_none());
    }

    #[test]
    fn narrowing_ignores_shared_access() {
        let (g, _, t) = setup_1d(32, 32);
        let mut p = PlacePath::new("arr", g.clone());
        p.push(PathStep::Deref);
        assert!(narrowing_violation(&p, AccessMode::Shrd, &t).is_none());
    }

    #[test]
    fn narrowing_skips_unit_extent_levels() {
        // A grid with a single block: the block level has extent 1 and
        // needs no distribution.
        let (g, _, t) = setup_1d(1, 32);
        let mut p = PlacePath::new("arr", g.clone());
        p.push(PathStep::Deref);
        p.push(sel(&t, 1));
        assert!(narrowing_violation(&p, AccessMode::Uniq, &t).is_none());
    }

    /// Atomic RMWs to one un-narrowed place never conflict with each
    /// other, but do conflict with plain reads and writes of the same
    /// place — the accept/reject boundary of the atomics feature.
    #[test]
    fn atomic_pairs_are_safe_plain_pairs_race() {
        let (g, _, t) = setup_1d(2, 32);
        let mut p = PlacePath::new("hist", g.clone());
        p.push(PathStep::Deref);
        p.push(PathStep::Index(Nat::var("__atomic_idx")));
        let at1 = access(p.clone(), AccessMode::Atomic, &t);
        let at2 = access(p.clone(), AccessMode::Atomic, &t);
        assert!(!may_race(&at1, &at2), "atomic-atomic is serialized");
        let rd = access(p.clone(), AccessMode::Shrd, &t);
        assert!(may_race(&at1, &rd), "atomic-read conflicts");
        let wr = access(p, AccessMode::Uniq, &t);
        assert!(may_race(&at1, &wr), "atomic-write conflicts");
    }

    /// Atomics to an un-narrowed place pass the narrowing check that a
    /// plain unique access fails.
    #[test]
    fn atomic_access_skips_narrowing() {
        let (g, _, t) = setup_1d(2, 32);
        let mut p = PlacePath::new("hist", g.clone());
        p.push(PathStep::Deref);
        assert!(narrowing_violation(&p, AccessMode::Uniq, &t).is_some());
        assert!(narrowing_violation(&p, AccessMode::Atomic, &t).is_none());
    }

    /// Warp/lane levels participate in narrowing exactly like
    /// block/thread levels: a lane-selected write under `to_warps` is
    /// narrowed, an unselected one is not.
    #[test]
    fn warp_lane_levels_count_for_narrowing() {
        let g = ExecExpr::grid(Dim::x(1u64), Dim::x(64u64));
        let b = g.forall(DimCompo::X).unwrap();
        let lanes = b
            .to_warps()
            .unwrap()
            .forall(DimCompo::X)
            .unwrap()
            .forall(DimCompo::X)
            .unwrap();
        // tmp owned by the block; both warp and lane levels must be
        // covered (warp extent 2, lane extent 32).
        let mut p = PlacePath::new("tmp", b.clone());
        p.push(sel(&lanes, 2)); // warp forall is ops[2] (after to_warps)
        p.push(sel(&lanes, 3)); // lane forall
        assert!(narrowing_violation(&p, AccessMode::Uniq, &lanes).is_none());
        // Lane select only: the warp level is uncovered.
        let mut p2 = PlacePath::new("tmp", b.clone());
        p2.push(sel(&lanes, 3));
        let v = narrowing_violation(&p2, AccessMode::Uniq, &lanes).unwrap();
        assert_eq!(v.missing.len(), 1);
        assert_eq!(v.missing[0].space, descend_exec::Space::Warp);
    }

    /// Under a warp-space split at 1, the warp level has extent 1 and a
    /// lane select alone narrows — the shape the warp-shuffle reduction
    /// epilogue uses.
    #[test]
    fn single_warp_branch_needs_only_lane_select() {
        let g = ExecExpr::grid(Dim::x(1u64), Dim::x(64u64));
        let b = g.forall(DimCompo::X).unwrap();
        let lanes = b
            .to_warps()
            .unwrap()
            .split(DimCompo::X, Nat::lit(1), Side::Fst)
            .unwrap()
            .forall(DimCompo::X)
            .unwrap()
            .forall(DimCompo::X)
            .unwrap();
        let mut p = PlacePath::new("tmp", b.clone());
        p.push(sel(&lanes, 4)); // the lane forall
        assert!(narrowing_violation(&p, AccessMode::Uniq, &lanes).is_none());
        let w = access(p, AccessMode::Uniq, &lanes);
        assert!(!may_race(&w, &w.clone()));
    }

    /// The window-overlap rule: reads through overlapping windows are
    /// fine, a write through an overlapping window conflicts even when
    /// fully selected — distinct executors' windows share elements.
    #[test]
    fn overlapping_window_writes_race_reads_do_not() {
        let (g, _, t) = setup_1d(1, 32);
        let mk = |s: u64| {
            let mut p = PlacePath::new("arr", g.clone());
            p.push(PathStep::Deref);
            p.push(PathStep::View(ViewStep::Windows {
                w: Nat::lit(3),
                s: Nat::lit(s),
            }));
            p.push(sel(&t, 0));
            p.push(sel(&t, 1));
            p
        };
        // Overlapping (stride 1 < width 3): write conflicts with itself
        // across executors and with any read of the same view.
        let w = access(mk(1), AccessMode::Uniq, &t);
        let r = access(mk(1), AccessMode::Shrd, &t);
        assert!(may_race(&w, &w.clone()), "overlapping window write races");
        assert!(may_race(&w, &r), "overlapping write vs read races");
        assert!(!may_race(&r, &r.clone()), "overlapping reads never race");
        // Non-overlapping (stride == width): behaves like `group`.
        let w = access(mk(3), AccessMode::Uniq, &t);
        assert!(!may_race(&w, &w.clone()), "tiling windows are disjoint");
    }

    /// The overlap rule reaches through `map`: writing via
    /// `map(windows::<3, 1>)` aliases across executors exactly like the
    /// top-level form and must conflict (the un-mapped twin is pinned
    /// above); a mapped *tiling* window stays disjoint.
    #[test]
    fn mapped_overlapping_windows_still_race() {
        let (g, _, t) = setup_1d(1, 32);
        let mk = |s: u64, k: u64| {
            let mut p = PlacePath::new("arr", g.clone());
            p.push(PathStep::Deref);
            p.push(PathStep::View(ViewStep::Map(vec![ViewStep::Windows {
                w: Nat::lit(3),
                s: Nat::lit(s),
            }])));
            p.push(sel(&t, 0));
            p.push(sel(&t, 1));
            p.push(PathStep::Index(Nat::lit(k)));
            p
        };
        let w = access(mk(1, 1), AccessMode::Uniq, &t);
        let r0 = access(mk(1, 0), AccessMode::Shrd, &t);
        assert!(
            may_race(&w, &r0),
            "map(windows) write vs offset read must race"
        );
        assert!(may_race(&w, &w.clone()), "map(windows) write self-races");
        // Tiling stride: literal offsets within disjoint windows are
        // provably disjoint, as without the map.
        let w = access(mk(3, 1), AccessMode::Uniq, &t);
        let r0 = access(mk(3, 0), AccessMode::Shrd, &t);
        assert!(!may_race(&w, &r0), "mapped tiling windows stay disjoint");
    }

    /// Within one window view, literal window indices decide nothing
    /// when the stride overlaps, but a *different* windows view is
    /// always conservatively overlapping.
    #[test]
    fn window_views_with_different_params_are_unknown() {
        let (g, _, t) = setup_1d(1, 32);
        let mk = |w: u64, s: u64| {
            let mut p = PlacePath::new("arr", g.clone());
            p.push(PathStep::View(ViewStep::Windows {
                w: Nat::lit(w),
                s: Nat::lit(s),
            }));
            p.push(sel(&t, 0));
            p.push(sel(&t, 1));
            access(p, AccessMode::Uniq, &t)
        };
        assert!(may_race(&mk(3, 3), &mk(2, 2)));
    }

    #[test]
    fn narrowing_relative_to_owner() {
        // tmp owned by the block: only the thread level must be covered.
        let (_, b, t) = setup_1d(32, 32);
        let mut p = PlacePath::new("tmp", b.clone());
        p.push(sel(&t, 1));
        assert!(narrowing_violation(&p, AccessMode::Uniq, &t).is_none());
        // Without the select: violation.
        let p2 = PlacePath::new("tmp", b);
        let v = narrowing_violation(&p2, AccessMode::Uniq, &t).unwrap();
        assert_eq!(v.missing.len(), 1);
    }
}
