//! Host intrinsics: the memory-management API of the paper's Section 3.4.
//!
//! | Intrinsic | Paper counterpart |
//! |---|---|
//! | `alloc::<cpu.mem, [T; n]>()` | `CpuHeap::new([0; n])` |
//! | `alloc::<gpu.global, [T; n]>()` | device-side scratch allocation |
//! | `gpu_alloc_copy(&h)` | `GpuGlobal::alloc_copy(&h)` |
//! | `copy_mem_to_host(&uniq h, &d)` | `copy_mem_to_host` |
//! | `copy_mem_to_gpu(&uniq d, &h)` | the reverse transfer |
//!
//! All intrinsics are CPU-only; their argument types enforce the memory
//! spaces, which is what turns the paper's swapped-`cudaMemcpy` bug into a
//! compile-time `mismatched types` error.

/// Names of the host intrinsics.
pub const GPU_ALLOC_COPY: &str = "gpu_alloc_copy";
/// See module docs.
pub const COPY_MEM_TO_HOST: &str = "copy_mem_to_host";
/// See module docs.
pub const COPY_MEM_TO_GPU: &str = "copy_mem_to_gpu";

/// Whether a call name is a host intrinsic.
pub fn is_intrinsic(name: &str) -> bool {
    matches!(name, GPU_ALLOC_COPY | COPY_MEM_TO_HOST | COPY_MEM_TO_GPU)
}
