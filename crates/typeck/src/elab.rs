//! Elaborated output of the type checker.
//!
//! Checking a program produces, besides the safety verdict, a fully
//! *elaborated* form that the code generators consume:
//!
//! - one [`MonoKernel`] per distinct kernel instantiation, with generics
//!   substituted, for-nat loops unrolled, `sched` dissolved into the SPMD
//!   model, `split` turned into coordinate conditions, and every memory
//!   access normalized to a [`PlacePath`] ready for index lowering;
//! - a list of [`HostStmt`]s describing the host program (allocations,
//!   transfers and kernel launches) for the host interpreter.

use descend_ast::ty::DimCompo;
use descend_ast::{term::AtomicOp, term::BinOp, term::ShflKind, term::UnOp, Nat};
use descend_exec::Space;
use descend_places::PlacePath;

/// The scalar element kinds that reach code generation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ScalarKind {
    /// 64-bit float.
    F64,
    /// 32-bit float.
    F32,
    /// 32-bit signed integer.
    I32,
    /// 32-bit unsigned integer.
    U32,
    /// Boolean.
    Bool,
}

impl ScalarKind {
    /// Size of one element in bytes (used by the simulator's memory and
    /// coalescing model).
    pub fn size_bytes(self) -> u64 {
        match self {
            ScalarKind::F64 => 8,
            ScalarKind::F32 => 4,
            ScalarKind::I32 => 4,
            ScalarKind::U32 => 4,
            ScalarKind::Bool => 1,
        }
    }

    /// The CUDA C++ spelling.
    pub fn cuda_name(self) -> &'static str {
        match self {
            ScalarKind::F64 => "double",
            ScalarKind::F32 => "float",
            ScalarKind::I32 => "int",
            ScalarKind::U32 => "unsigned int",
            ScalarKind::Bool => "bool",
        }
    }
}

/// Where an elaborated access points.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MemKind {
    /// A kernel parameter in GPU global memory (with its parameter index).
    GlobalParam(usize),
    /// A shared-memory allocation (with its allocation index).
    Shared(usize),
}

/// An elaborated memory access: a normalized path, the root array's
/// dimensions, and the destination memory.
#[derive(Clone, Debug, PartialEq)]
pub struct ElabAccess {
    /// The normalized place path (for index lowering).
    pub path: PlacePath,
    /// Root array dimension sizes, outermost first (all literal).
    pub root_dims: Vec<Nat>,
    /// Which memory the root lives in.
    pub mem: MemKind,
    /// Element scalar kind.
    pub elem: ScalarKind,
}

/// An elaborated (right-hand side) expression.
#[derive(Clone, Debug, PartialEq)]
pub enum ElabExpr {
    /// Float/int/bool literal, as an f64 bit pattern plus kind.
    Lit(ScalarKind, f64),
    /// Read of a thread-private local.
    Local(String),
    /// Load from global or shared memory.
    Load(ElabAccess),
    /// Binary operation.
    Binary(BinOp, Box<ElabExpr>, Box<ElabExpr>),
    /// Unary operation.
    Unary(UnOp, Box<ElabExpr>),
    /// A warp shuffle: every lane of the warp evaluates `value` in
    /// lockstep and receives the value computed by the source lane
    /// (`lane_id + delta` for `Down`, `lane_id ^ delta` for `Xor`).
    /// This is a register exchange — no memory access, no barrier — so
    /// the IR lowering extracts it into a dedicated warp-synchronous
    /// instruction while text backends render the target's shuffle
    /// intrinsic inline.
    Shfl {
        /// The shuffle pattern.
        kind: ShflKind,
        /// The exchanged operand.
        value: Box<ElabExpr>,
        /// Static shuffle distance/mask, already checked to be in
        /// `1..WARP_SIZE`.
        delta: u32,
    },
}

/// An elaborated kernel statement (SPMD: executed by every thread, with
/// splits as coordinate conditions).
#[derive(Clone, Debug, PartialEq)]
pub enum ElabStmt {
    /// Declare (and initialize) a thread-private scalar local.
    Local {
        /// Local name (unique per kernel).
        name: String,
        /// Element kind.
        elem: ScalarKind,
        /// Initializer.
        init: ElabExpr,
    },
    /// Re-assign a mutable local.
    AssignLocal {
        /// Local name.
        name: String,
        /// New value.
        value: ElabExpr,
    },
    /// Store to global or shared memory.
    Store {
        /// Destination access.
        access: ElabAccess,
        /// Stored value.
        value: ElabExpr,
    },
    /// A split: threads (or blocks) below/above a coordinate threshold
    /// take different branches.
    Split {
        /// Space of the split coordinate.
        space: Space,
        /// Dimension of the split coordinate.
        dim: DimCompo,
        /// Absolute threshold: `coord < threshold` takes `fst`.
        threshold: u64,
        /// Statements of the first part.
        fst: Vec<ElabStmt>,
        /// Statements of the second part.
        snd: Vec<ElabStmt>,
    },
    /// An atomic read-modify-write on global or shared memory. With
    /// `index`, the *element* within the array place denoted by `access`
    /// is chosen dynamically (atomic scatter); the access path then ends
    /// in `Index(Nat::Var(descend_places::DYN_IDX))` and code generation
    /// substitutes the lowered `index` expression for the sentinel, so
    /// the address still flows through the one shared lowering.
    Atomic {
        /// The operation.
        op: AtomicOp,
        /// Target access (scalar place, possibly via the sentinel index).
        access: ElabAccess,
        /// Dynamic element index (scatter form only).
        index: Option<ElabExpr>,
        /// The combined operand.
        value: ElabExpr,
    },
    /// Block-wide barrier.
    Sync,
    /// Source-location marker: the statements that follow (until the
    /// next marker at the same nesting depth) elaborate the source
    /// statement covering this span. Markers carry no semantics — code
    /// generators skip them, the IR lowering forwards them so the
    /// simulator can attribute modeled cost to source spans.
    Src(descend_ast::span::Span),
}

/// A shared-memory allocation of a kernel.
#[derive(Clone, Debug, PartialEq)]
pub struct SharedAlloc {
    /// Variable name.
    pub name: String,
    /// Element kind.
    pub elem: ScalarKind,
    /// Dimension sizes, outermost first.
    pub dims: Vec<u64>,
}

/// A kernel parameter (always a reference to a global-memory array).
#[derive(Clone, Debug, PartialEq)]
pub struct KernelParam {
    /// Parameter name.
    pub name: String,
    /// Element kind.
    pub elem: ScalarKind,
    /// Dimension sizes, outermost first.
    pub dims: Vec<u64>,
    /// Whether the kernel may write through this parameter.
    pub uniq: bool,
}

/// A monomorphized, elaborated GPU kernel.
#[derive(Clone, Debug, PartialEq)]
pub struct MonoKernel {
    /// Mangled instance name (`name` plus nat arguments).
    pub name: String,
    /// The source-level function name.
    pub source_name: String,
    /// Blocks per grid dimension `(x, y, z)`.
    pub grid_dim: [u64; 3],
    /// Threads per block dimension `(x, y, z)`.
    pub block_dim: [u64; 3],
    /// Parameters in declaration order.
    pub params: Vec<KernelParam>,
    /// Shared-memory allocations in declaration order.
    pub shared: Vec<SharedAlloc>,
    /// The elaborated SPMD body.
    pub body: Vec<ElabStmt>,
}

impl MonoKernel {
    /// Shifts every source span in the elaborated body by `delta` bytes
    /// (dummy spans stay dummy).
    ///
    /// Source spans are the only absolute byte offsets an elaborated
    /// kernel carries, so a cached instantiation whose defining function
    /// moved within the file — but whose source text is unchanged — is
    /// rebased to its new location with this one walk. The incremental
    /// compiler relies on that to return byte-identical output from warm
    /// caches.
    pub fn shift_spans(&mut self, delta: i64) {
        if delta != 0 {
            shift_stmts(&mut self.body, delta);
        }
    }
}

fn shift_stmts(stmts: &mut [ElabStmt], delta: i64) {
    for s in stmts {
        match s {
            ElabStmt::Src(span) => {
                if !span.is_dummy() {
                    span.start = (i64::from(span.start) + delta) as u32;
                    span.end = (i64::from(span.end) + delta) as u32;
                }
            }
            ElabStmt::Split { fst, snd, .. } => {
                shift_stmts(fst, delta);
                shift_stmts(snd, delta);
            }
            ElabStmt::Local { .. }
            | ElabStmt::AssignLocal { .. }
            | ElabStmt::Store { .. }
            | ElabStmt::Atomic { .. }
            | ElabStmt::Sync => {}
        }
    }
}

/// An elaborated host statement.
#[derive(Clone, Debug, PartialEq)]
pub enum HostStmt {
    /// Allocate a zero-initialized CPU array.
    AllocCpu {
        /// Variable name.
        name: String,
        /// Element kind.
        elem: ScalarKind,
        /// Total element count.
        len: u64,
    },
    /// Allocate a zero-initialized GPU global array.
    AllocGpu {
        /// Variable name.
        name: String,
        /// Element kind.
        elem: ScalarKind,
        /// Total element count.
        len: u64,
    },
    /// Allocate a GPU array and copy a CPU array into it
    /// (`GpuGlobal::alloc_copy`).
    AllocGpuCopy {
        /// Variable name.
        name: String,
        /// Source CPU variable.
        src: String,
        /// Element kind, carried explicitly so consumers never have to
        /// re-derive (or worse, guess) it from the source allocation.
        elem: ScalarKind,
    },
    /// Copy device memory back to the host (`copy_mem_to_host`).
    CopyToHost {
        /// Destination CPU variable.
        dst: String,
        /// Source GPU variable.
        src: String,
    },
    /// Copy host memory to the device (`copy_mem_to_gpu`).
    CopyToGpu {
        /// Destination GPU variable.
        dst: String,
        /// Source CPU variable.
        src: String,
    },
    /// Launch a kernel instance.
    Launch {
        /// Index into [`crate::CheckedProgram::kernels`].
        kernel: usize,
        /// GPU buffer variable names passed as arguments, in order.
        args: Vec<String>,
    },
}
