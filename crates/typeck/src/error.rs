//! Type errors and their rendering as paper-style diagnostics.

use descend_ast::Span;
use descend_diag::Diagnostic;
use std::fmt;

/// The structured kind of a type error; tests match on this.
#[derive(Clone, Debug, PartialEq)]
pub enum ErrorKind {
    /// Two types that should match do not (also covers memory-space
    /// mismatches, reproducing the paper's `copy_mem_to_host` example).
    MismatchedTypes,
    /// A conflicting memory access (potential data race).
    ConflictingAccess,
    /// A unique access without proper narrowing selects.
    NarrowingViolation,
    /// `sync` under a thread-space split (paper Section 2.2).
    BarrierNotAllowed,
    /// Dereferencing memory in the wrong execution context
    /// (paper Section 2.3: `cpu.mem` on the GPU).
    WrongExecutionContext,
    /// Launch configuration does not match the kernel's annotation.
    LaunchConfigMismatch,
    /// Unknown variable, function, or view.
    UnknownName,
    /// Use of a moved value.
    MovedValue,
    /// Conflicting borrows.
    BorrowConflict,
    /// Writing through a shared reference or to an immutable binding.
    NotWritable,
    /// A view was misapplied (shape errors, arity, ...).
    ViewMisapplied,
    /// Select count mismatch: array extent differs from the execution
    /// resource extent.
    SelectSizeMismatch,
    /// A `where` clause was violated at instantiation.
    WhereClauseViolated,
    /// Scheduling error (missing dimension, double scheduling, ...).
    ScheduleError,
    /// An illegal warp shuffle: outside warp-level scheduling, under a
    /// lane-space split (warp divergence), or a distance that reaches
    /// across the warp boundary.
    ShuffleError,
    /// Shadowing is rejected to keep place roots unique.
    Shadowing,
    /// Arity mismatch in calls or generics.
    ArityMismatch,
    /// A feature the checker intentionally does not support.
    Unsupported,
    /// Index provably out of bounds.
    OutOfBounds,
    /// A nat that must be statically evaluated could not be.
    NonStaticNat,
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorKind::MismatchedTypes => "mismatched types",
            ErrorKind::ConflictingAccess => "conflicting memory access",
            ErrorKind::NarrowingViolation => "narrowing violated",
            ErrorKind::BarrierNotAllowed => "barrier not allowed here",
            ErrorKind::WrongExecutionContext => "wrong execution context",
            ErrorKind::LaunchConfigMismatch => "launch configuration mismatch",
            ErrorKind::UnknownName => "unknown name",
            ErrorKind::MovedValue => "use of moved value",
            ErrorKind::BorrowConflict => "conflicting borrows",
            ErrorKind::NotWritable => "cannot write to this place",
            ErrorKind::ViewMisapplied => "view cannot be applied",
            ErrorKind::SelectSizeMismatch => "select size mismatch",
            ErrorKind::WhereClauseViolated => "where clause violated",
            ErrorKind::ScheduleError => "invalid schedule",
            ErrorKind::ShuffleError => "invalid shuffle",
            ErrorKind::Shadowing => "shadowing is not allowed",
            ErrorKind::ArityMismatch => "wrong number of arguments",
            ErrorKind::Unsupported => "unsupported construct",
            ErrorKind::OutOfBounds => "index out of bounds",
            ErrorKind::NonStaticNat => "size is not statically known",
        };
        write!(f, "{s}")
    }
}

/// A type error: a structured kind plus a renderable diagnostic.
#[derive(Clone, Debug)]
pub struct TypeError {
    /// The structured kind.
    pub kind: ErrorKind,
    /// The renderable diagnostic.
    pub diag: Diagnostic,
}

impl TypeError {
    /// Creates an error from a kind, span and primary message.
    pub fn new(kind: ErrorKind, span: Span, msg: impl Into<String>) -> TypeError {
        let title = kind.to_string();
        TypeError {
            kind,
            diag: Diagnostic::new(title, span, msg),
        }
    }

    /// Attaches a secondary label.
    pub fn with_secondary(mut self, span: Span, msg: impl Into<String>) -> TypeError {
        self.diag = self.diag.with_secondary(span, msg);
        self
    }

    /// Attaches help text.
    pub fn with_help(mut self, msg: impl Into<String>) -> TypeError {
        self.diag = self.diag.with_help(msg);
        self
    }
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind, self.diag.primary.message)
    }
}

impl std::error::Error for TypeError {}
