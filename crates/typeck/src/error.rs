//! Type errors and their rendering as paper-style diagnostics.

use descend_ast::Span;
use descend_diag::Diagnostic;
use std::fmt;

/// The structured kind of a type error; tests match on this.
#[derive(Clone, Debug, PartialEq)]
pub enum ErrorKind {
    /// Two types that should match do not (also covers memory-space
    /// mismatches, reproducing the paper's `copy_mem_to_host` example).
    MismatchedTypes,
    /// A conflicting memory access (potential data race).
    ConflictingAccess,
    /// A unique access without proper narrowing selects.
    NarrowingViolation,
    /// `sync` under a thread-space split (paper Section 2.2).
    BarrierNotAllowed,
    /// Dereferencing memory in the wrong execution context
    /// (paper Section 2.3: `cpu.mem` on the GPU).
    WrongExecutionContext,
    /// Launch configuration does not match the kernel's annotation.
    LaunchConfigMismatch,
    /// Unknown variable, function, or view.
    UnknownName,
    /// Use of a moved value.
    MovedValue,
    /// Conflicting borrows.
    BorrowConflict,
    /// Writing through a shared reference or to an immutable binding.
    NotWritable,
    /// A view was misapplied (shape errors, arity, ...).
    ViewMisapplied,
    /// Select count mismatch: array extent differs from the execution
    /// resource extent.
    SelectSizeMismatch,
    /// A `where` clause was violated at instantiation.
    WhereClauseViolated,
    /// Scheduling error (missing dimension, double scheduling, ...).
    ScheduleError,
    /// An illegal warp shuffle: outside warp-level scheduling, under a
    /// lane-space split (warp divergence), or a distance that reaches
    /// across the warp boundary.
    ShuffleError,
    /// Shadowing is rejected to keep place roots unique.
    Shadowing,
    /// Arity mismatch in calls or generics.
    ArityMismatch,
    /// A feature the checker intentionally does not support.
    Unsupported,
    /// Index provably out of bounds.
    OutOfBounds,
    /// A nat that must be statically evaluated could not be.
    NonStaticNat,
}

impl ErrorKind {
    /// Every variant, in declaration (= code) order. Coverage tests
    /// iterate this to demand a conformance program and a documentation
    /// entry per kind.
    pub const ALL: [ErrorKind; 20] = [
        ErrorKind::MismatchedTypes,
        ErrorKind::ConflictingAccess,
        ErrorKind::NarrowingViolation,
        ErrorKind::BarrierNotAllowed,
        ErrorKind::WrongExecutionContext,
        ErrorKind::LaunchConfigMismatch,
        ErrorKind::UnknownName,
        ErrorKind::MovedValue,
        ErrorKind::BorrowConflict,
        ErrorKind::NotWritable,
        ErrorKind::ViewMisapplied,
        ErrorKind::SelectSizeMismatch,
        ErrorKind::WhereClauseViolated,
        ErrorKind::ScheduleError,
        ErrorKind::ShuffleError,
        ErrorKind::Shadowing,
        ErrorKind::ArityMismatch,
        ErrorKind::Unsupported,
        ErrorKind::OutOfBounds,
        ErrorKind::NonStaticNat,
    ];

    /// The stable error code of this kind, one per variant in
    /// declaration order (`descend_diag::registry` is the source of
    /// truth for titles and explanations; `descendc explain` serves
    /// them).
    pub fn code(&self) -> &'static str {
        match self {
            ErrorKind::MismatchedTypes => "E0101",
            ErrorKind::ConflictingAccess => "E0102",
            ErrorKind::NarrowingViolation => "E0103",
            ErrorKind::BarrierNotAllowed => "E0104",
            ErrorKind::WrongExecutionContext => "E0105",
            ErrorKind::LaunchConfigMismatch => "E0106",
            ErrorKind::UnknownName => "E0107",
            ErrorKind::MovedValue => "E0108",
            ErrorKind::BorrowConflict => "E0109",
            ErrorKind::NotWritable => "E0110",
            ErrorKind::ViewMisapplied => "E0111",
            ErrorKind::SelectSizeMismatch => "E0112",
            ErrorKind::WhereClauseViolated => "E0113",
            ErrorKind::ScheduleError => "E0114",
            ErrorKind::ShuffleError => "E0115",
            ErrorKind::Shadowing => "E0116",
            ErrorKind::ArityMismatch => "E0117",
            ErrorKind::Unsupported => "E0118",
            ErrorKind::OutOfBounds => "E0119",
            ErrorKind::NonStaticNat => "E0120",
        }
    }
}

impl fmt::Display for ErrorKind {
    /// Displays the registry title of the kind's code, so every user-
    /// facing surface (corpus markers, rendered headlines, docs) uses
    /// one canonical phrase per code.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", descend_diag::registry::title(self.code()))
    }
}

/// A type error: a structured kind plus a renderable diagnostic.
///
/// The diagnostic is boxed: `TResult<T>` flows through every checker
/// function, and keeping the `Err` variant pointer-sized keeps those
/// returns cheap (clippy's `result_large_err`).
#[derive(Clone, Debug)]
pub struct TypeError {
    /// The structured kind.
    pub kind: ErrorKind,
    /// The renderable diagnostic.
    pub diag: Box<Diagnostic>,
}

impl TypeError {
    /// Creates an error from a kind, span and primary message. The
    /// diagnostic carries the kind's stable code and registry title.
    pub fn new(kind: ErrorKind, span: Span, msg: impl Into<String>) -> TypeError {
        let code = kind.code();
        TypeError {
            kind,
            diag: Box::new(Diagnostic::coded(code, span, msg)),
        }
    }

    /// Attaches a secondary label.
    pub fn with_secondary(mut self, span: Span, msg: impl Into<String>) -> TypeError {
        self.diag = Box::new((*self.diag).with_secondary(span, msg));
        self
    }

    /// Attaches help text.
    pub fn with_help(mut self, msg: impl Into<String>) -> TypeError {
        self.diag = Box::new((*self.diag).with_help(msg));
        self
    }
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind, self.diag.primary.message)
    }
}

impl std::error::Error for TypeError {}

#[cfg(test)]
mod tests {
    use super::*;
    use descend_diag::registry;

    #[test]
    fn all_is_in_code_order_and_codes_are_dense() {
        for (i, k) in ErrorKind::ALL.iter().enumerate() {
            assert_eq!(k.code(), format!("E01{:02}", i + 1), "{k:?}");
        }
    }

    #[test]
    fn every_kind_is_registered_with_matching_title() {
        for k in ErrorKind::ALL {
            let info = registry::lookup(k.code())
                .unwrap_or_else(|| panic!("{k:?} ({}) missing from registry", k.code()));
            assert_eq!(info.title, k.to_string(), "{k:?}");
        }
    }

    #[test]
    fn type_error_diag_carries_the_code() {
        let e = TypeError::new(
            ErrorKind::BarrierNotAllowed,
            descend_ast::Span::new(0, 4),
            "`sync` here",
        );
        assert_eq!(e.diag.code, Some("E0104"));
        assert!(e.diag.render("sync;").starts_with("error[E0104]: "));
    }
}
