//! The Descend type system (paper Section 4).
//!
//! The checker is *flow-sensitive*: it walks each function body once per
//! monomorphic instantiation, threading
//!
//! - a local typing environment `Γl` (bindings, moves, borrows),
//! - the current execution resource `e` (extended by `sched`/`split`),
//! - and the access environment `A` mapping execution resources to the
//!   place expressions they accessed (shared or unique),
//!
//! exactly as the typing judgement
//! `Δ; Γg; Γl; Θ | ef : ε; e | A ⊢ t : δ ⊣ Γl' | A'` does.
//!
//! Every memory access runs the paper's `access_safety_check`:
//!
//! 1. **narrowing** ([`descend_places::narrowing_violation`]),
//! 2. **access conflicts** ([`descend_places::may_race`]) against `A`,
//! 3. **borrow checking** (Rust-style, on CPU and GPU alike).
//!
//! Barriers (`sync`) are rejected under thread-space splits and release
//! the recorded accesses to shared memory, enabling the paper's
//! communication-through-barrier pattern.
//!
//! Atomic RMW statements (`atomic_add(p, e)`, `atomic_min`, `atomic_max`,
//! `atomic_exchange`, plus the scatter form `atomic_add(p, i, e)` with a
//! runtime element index) are recorded with a third access mode,
//! `Atomic`: they skip the narrowing rule (the hardware serializes
//! conflicting RMWs, so un-narrowed concurrent updates are safe) and
//! never conflict with other atomics, while any overlapping *plain* read
//! or write still conflicts. This makes atomics the only way a place
//! reachable by several threads may be written without per-thread
//! selects — exactly the boundary the fail corpus pins from both sides.
//!
//! ## Divergences from the paper (documented in DESIGN.md)
//!
//! - **Monomorphic checking**: generic functions are checked per
//!   instantiation (like C++ templates). The paper checks polymorphically;
//!   the same programs are accepted/rejected for every artifact
//!   reproduced here, and `where` clauses are validated at instantiation.
//! - **Static unrolling**: for-nat loops (whose ranges are static by
//!   construction) are unrolled during checking and code generation,
//!   mirroring `#pragma unroll` for such loops in CUDA practice.

#![deny(missing_docs)]

mod builtins;
mod check;
mod elab;
mod error;

pub use check::{
    check_context, check_fn, check_program, launch_callees, CheckedFn, CheckedProgram,
};
pub use elab::{
    ElabAccess, ElabExpr, ElabStmt, HostStmt, KernelParam, MemKind, MonoKernel, ScalarKind,
    SharedAlloc,
};
pub use error::{ErrorKind, TypeError};
