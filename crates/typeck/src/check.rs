//! The flow-sensitive checker.

use crate::builtins;
use crate::elab::*;
use crate::error::{ErrorKind, TypeError};
use descend_ast::term::*;
use descend_ast::ty::*;
use descend_ast::{Nat, Span};
use descend_exec::{ExecExpr, Side, Space};
use descend_places::{
    may_overlap, may_race, narrowing_violation, resolve_view_app, zip_ty, Access, AccessMode,
    PathStep, PlacePath, SelectStep, ViewDefs, ViewStep, DYN_IDX,
};
use std::collections::{HashMap, HashSet};

/// The result of checking a program: elaborated kernels and host code.
#[derive(Clone, Debug, Default)]
pub struct CheckedProgram {
    /// All kernel instantiations, in discovery order.
    pub kernels: Vec<MonoKernel>,
    /// Host functions: name and elaborated statements.
    pub host_fns: Vec<(String, Vec<HostStmt>)>,
}

impl CheckedProgram {
    /// Looks up a kernel instance by mangled name.
    pub fn kernel(&self, name: &str) -> Option<&MonoKernel> {
        self.kernels.iter().find(|k| k.name == name)
    }

    /// The host statements of a host function.
    pub fn host_fn(&self, name: &str) -> Option<&[HostStmt]> {
        self.host_fns
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s.as_slice())
    }
}

type TResult<T> = Result<T, TypeError>;

/// Type-checks a complete program, returning the elaborated form.
///
/// Every function is checked: CPU functions directly, non-generic GPU
/// functions standalone, and generic GPU functions once per distinct
/// instantiation discovered at launch sites.
///
/// # Errors
///
/// The first [`TypeError`] encountered, with a renderable diagnostic.
pub fn check_program(program: &Program) -> TResult<CheckedProgram> {
    let mut cx = GlobalCx::new(program)?;
    // Check non-generic GPU functions standalone.
    for item in &program.items {
        if let Item::Fn(f) = item {
            if matches!(f.sig.exec_ty, ExecTy::GpuGrid(..)) && f.sig.generics.is_empty() {
                cx.instantiate_kernel(f, &[], f.span)?;
            }
        }
    }
    // Check CPU functions.
    for item in &program.items {
        if let Item::Fn(f) = item {
            if matches!(f.sig.exec_ty, ExecTy::CpuThread) {
                let stmts = cx.check_host_fn(f)?;
                cx.out.host_fns.push((f.sig.name.clone(), stmts));
            }
        }
    }
    Ok(cx.out)
}

/// The elaborated result of checking one function in isolation — the
/// unit the incremental compiler caches per function (see
/// [`check_fn`]).
#[derive(Clone, Debug, Default)]
pub struct CheckedFn {
    /// Kernel instantiations produced by this function's check, in
    /// discovery order: a non-generic GPU function yields its own single
    /// instance; a host function yields every kernel instance it
    /// launches (generic or not).
    pub kernels: Vec<MonoKernel>,
    /// For host functions, the elaborated host statements. Their
    /// [`HostStmt::Launch`] indices refer into [`CheckedFn::kernels`]
    /// *of this result* — callers merging several `CheckedFn`s must
    /// remap them (deduplicating kernels by mangled instance name).
    pub host: Option<Vec<HostStmt>>,
}

/// Validates the program-wide item context all functions share: view
/// definitions are registered and nat constants evaluate.
///
/// This is the program-level prefix of [`check_program`]; incremental
/// drivers run it once per compile before issuing per-function
/// [`check_fn`] queries.
///
/// # Errors
///
/// The first [`TypeError`] from constant evaluation.
pub fn check_context(program: &Program) -> TResult<()> {
    GlobalCx::new(program).map(|_| ())
}

/// Checks a single function of `program` in isolation — the
/// per-function typeck entry point for incremental compilation.
///
/// The result depends only on the function's own definition, the
/// program's views and constants, and (for host functions) the
/// definitions of the kernels it launches — never on other host
/// functions — so it can be cached keyed by those inputs. Checking
/// every function of a program this way and merging the results (in
/// [`check_program`]'s order, deduplicating kernels by mangled name)
/// reproduces [`check_program`]'s output exactly; the workspace-level
/// incremental test pins that equivalence corpus-wide.
///
/// Generic GPU functions return an empty result, mirroring
/// [`check_program`]: they are checked per instantiation at launch
/// sites, i.e. inside the launching host function's `check_fn`.
///
/// # Errors
///
/// The first [`TypeError`] encountered, as [`check_program`] would
/// report when reaching this function.
pub fn check_fn(program: &Program, f: &FnDef) -> TResult<CheckedFn> {
    let mut cx = GlobalCx::new(program)?;
    match &f.sig.exec_ty {
        ExecTy::GpuGrid(..) if f.sig.generics.is_empty() => {
            cx.instantiate_kernel(f, &[], f.span)?;
            Ok(CheckedFn {
                kernels: cx.out.kernels,
                host: None,
            })
        }
        ExecTy::CpuThread => {
            let stmts = cx.check_host_fn(f)?;
            Ok(CheckedFn {
                kernels: cx.out.kernels,
                host: Some(stmts),
            })
        }
        // Generic kernels (checked per instantiation) and non-top-level
        // execution levels (which check_program ignores) contribute
        // nothing standalone.
        _ => Ok(CheckedFn::default()),
    }
}

/// The kernel names a function's body launches, in source order —
/// the syntactic dependency set an incremental driver hashes into a
/// host function's cache key (a launch is the only way one function's
/// check can depend on another function's definition).
pub fn launch_callees(f: &FnDef) -> Vec<String> {
    fn walk_block(b: &Block, out: &mut Vec<String>) {
        for s in &b.stmts {
            walk_stmt(s, out);
        }
    }
    fn walk_stmt(s: &Stmt, out: &mut Vec<String>) {
        match &s.kind {
            StmtKind::Let { init, .. } => walk_expr(init, out),
            StmtKind::Assign { value, .. } => walk_expr(value, out),
            StmtKind::Expr(e) => walk_expr(e, out),
            StmtKind::ToWarps { body, .. }
            | StmtKind::Sched { body, .. }
            | StmtKind::ForNat { body, .. } => walk_block(body, out),
            StmtKind::SplitExec {
                fst_body, snd_body, ..
            } => {
                walk_block(fst_body, out);
                walk_block(snd_body, out);
            }
            StmtKind::AtomicRmw { index, value, .. } => {
                if let Some(i) = index {
                    walk_expr(i, out);
                }
                walk_expr(value, out);
            }
            StmtKind::Scope(b) => walk_block(b, out),
            StmtKind::Sync => {}
        }
    }
    fn walk_expr(e: &Expr, out: &mut Vec<String>) {
        match &e.kind {
            ExprKind::Launch { name, args, .. } => {
                if !out.contains(name) {
                    out.push(name.clone());
                }
                for a in args {
                    walk_expr(a, out);
                }
            }
            ExprKind::Call { args, .. } => {
                for a in args {
                    walk_expr(a, out);
                }
            }
            ExprKind::Binary(_, a, b) => {
                walk_expr(a, out);
                walk_expr(b, out);
            }
            ExprKind::Unary(_, a) | ExprKind::Shfl { value: a, .. } => walk_expr(a, out),
            ExprKind::Lit(_)
            | ExprKind::Place(_)
            | ExprKind::Borrow { .. }
            | ExprKind::Alloc { .. } => {}
        }
    }
    let mut out = Vec::new();
    walk_block(&f.body, &mut out);
    out
}

/// Program-wide context.
struct GlobalCx<'p> {
    program: &'p Program,
    views: ViewDefs,
    consts: HashMap<String, u64>,
    instantiated: HashSet<String>,
    out: CheckedProgram,
}

impl<'p> GlobalCx<'p> {
    fn new(program: &'p Program) -> TResult<GlobalCx<'p>> {
        let mut views = ViewDefs::new();
        let mut consts: HashMap<String, u64> = HashMap::new();
        for item in &program.items {
            match item {
                Item::View(v) => {
                    views.insert(v.name.clone(), v.params.clone(), v.body.clone());
                }
                Item::Const(c) => {
                    let v = c.value.eval(&|x| consts.get(x).copied()).map_err(|e| {
                        TypeError::new(ErrorKind::NonStaticNat, c.span, e.to_string())
                    })?;
                    consts.insert(c.name.clone(), v);
                }
                Item::Fn(_) => {}
            }
        }
        Ok(GlobalCx {
            program,
            views,
            consts,
            instantiated: HashSet::new(),
            out: CheckedProgram::default(),
        })
    }

    fn nat_env(&self) -> HashMap<String, u64> {
        self.consts.clone()
    }

    /// Instantiates and checks a GPU kernel, returning its index in the
    /// kernel table.
    fn instantiate_kernel(
        &mut self,
        f: &FnDef,
        nat_args: &[u64],
        call_span: Span,
    ) -> TResult<usize> {
        if f.sig.generics.len() != nat_args.len() {
            return Err(TypeError::new(
                ErrorKind::ArityMismatch,
                call_span,
                format!(
                    "kernel `{}` expects {} generic argument(s), found {}",
                    f.sig.name,
                    f.sig.generics.len(),
                    nat_args.len()
                ),
            ));
        }
        for (name, kind) in &f.sig.generics {
            if *kind != Kind::Nat {
                return Err(TypeError::new(
                    ErrorKind::Unsupported,
                    f.span,
                    format!("generic parameter `{name}` has kind `{kind}`; only `nat` generics are supported"),
                ));
            }
        }
        let mangled = mangle(&f.sig.name, nat_args);
        if self.instantiated.contains(&mangled) {
            let idx = self
                .out
                .kernels
                .iter()
                .position(|k| k.name == mangled)
                .expect("instantiated kernels are recorded");
            return Ok(idx);
        }
        let mut env = self.nat_env();
        for ((name, _), v) in f.sig.generics.iter().zip(nat_args) {
            env.insert(name.clone(), *v);
        }
        // Check where clauses at instantiation.
        for wc in &f.sig.where_clauses {
            let holds = wc
                .check(&|x| env.get(x).copied())
                .map_err(|e| TypeError::new(ErrorKind::NonStaticNat, call_span, e.to_string()))?;
            if !holds {
                return Err(TypeError::new(
                    ErrorKind::WhereClauseViolated,
                    call_span,
                    format!("instantiation of `{}` violates `{wc}`", f.sig.name),
                ));
            }
        }
        let ExecTy::GpuGrid(bdim, tdim) = &f.sig.exec_ty else {
            return Err(TypeError::new(
                ErrorKind::Unsupported,
                f.span,
                "only gpu.grid functions can be instantiated as kernels",
            ));
        };
        let bdim = subst_dim(bdim, &env, f.span)?;
        let tdim = subst_dim(tdim, &env, f.span)?;
        // Mark before checking to terminate recursion on self-launch.
        self.instantiated.insert(mangled.clone());
        let mut fcx = FnCx::new(
            self,
            env.clone(),
            ExecExpr::grid(bdim.clone(), tdim.clone()),
        );
        // Bind the execution resource and parameters.
        fcx.exec_bindings.insert(
            f.sig.exec_name.clone(),
            ExecBinding {
                expr: fcx.exec.clone(),
                introduced: Vec::new(),
            },
        );
        let mut params = Vec::new();
        for p in &f.sig.params {
            let ty = subst_ty(&p.ty, &env, f.span)?;
            let DataTy::Ref(kind, mem, inner) = &ty else {
                return Err(TypeError::new(
                    ErrorKind::Unsupported,
                    f.span,
                    format!("kernel parameter `{}` must be a reference", p.name),
                ));
            };
            // Non-global parameters (e.g. the paper's cpu.mem deref demo)
            // are bound for checking but get no buffer slot: any use of
            // them as memory errors before lowering.
            let index = if *mem == Memory::GpuGlobal {
                let (elem, dims) = scalar_and_dims(inner, f.span)?;
                params.push(KernelParam {
                    name: p.name.clone(),
                    elem,
                    dims: dims
                        .iter()
                        .map(|d| d.as_lit().expect("substituted dims are literal"))
                        .collect(),
                    uniq: *kind == RefKind::Uniq,
                });
                params.len() - 1
            } else {
                usize::MAX
            };
            fcx.bind(
                &p.name,
                Binding {
                    ty: ty.clone(),
                    mutable: false,
                    owner: fcx.exec.clone(),
                    kind: BindKind::KernelParam {
                        index,
                        mem: mem.clone(),
                    },
                },
                f.span,
            )?;
        }
        let body = fcx.check_block(&f.body, true)?;
        let kernel = MonoKernel {
            name: mangled.clone(),
            source_name: f.sig.name.clone(),
            grid_dim: dim_to_xyz(&bdim),
            block_dim: dim_to_xyz(&tdim),
            params,
            shared: fcx.shared_allocs,
            body,
        };
        self.out.kernels.push(kernel);
        Ok(self.out.kernels.len() - 1)
    }

    /// Checks a CPU host function.
    fn check_host_fn(&mut self, f: &FnDef) -> TResult<Vec<HostStmt>> {
        if !f.sig.generics.is_empty() || !f.sig.params.is_empty() {
            return Err(TypeError::new(
                ErrorKind::Unsupported,
                f.span,
                "host functions with generics or parameters are not supported",
            ));
        }
        let env = self.nat_env();
        let mut fcx = FnCx::new(self, env, ExecExpr::cpu_thread());
        fcx.exec_bindings.insert(
            f.sig.exec_name.clone(),
            ExecBinding {
                expr: ExecExpr::cpu_thread(),
                introduced: Vec::new(),
            },
        );
        let mut host = Vec::new();
        fcx.host_out = Some(&mut host as *mut Vec<HostStmt>);
        let _ = fcx.check_block(&f.body, true)?;
        Ok(host)
    }
}

fn mangle(name: &str, nat_args: &[u64]) -> String {
    if nat_args.is_empty() {
        name.to_string()
    } else {
        let args: Vec<String> = nat_args.iter().map(|v| v.to_string()).collect();
        format!("{name}__{}", args.join("_"))
    }
}

fn subst_dim(d: &Dim, env: &HashMap<String, u64>, span: Span) -> TResult<Dim> {
    let mut comps = Vec::new();
    for (c, n) in d.components() {
        let v = n
            .eval(&|x| env.get(x).copied())
            .map_err(|e| TypeError::new(ErrorKind::NonStaticNat, span, e.to_string()))?;
        comps.push((c, Nat::lit(v)));
    }
    Ok(Dim::new(comps))
}

fn subst_ty(t: &DataTy, env: &HashMap<String, u64>, span: Span) -> TResult<DataTy> {
    // Substitute and force every nat in the type to a literal.
    let substituted = t.subst_nats(&|x| env.get(x).map(|v| Nat::lit(*v)));
    force_literal_nats(&substituted, span)
}

fn force_literal_nats(t: &DataTy, span: Span) -> TResult<DataTy> {
    Ok(match t {
        DataTy::Array(e, n) => {
            let v = n.as_lit().ok_or_else(|| {
                TypeError::new(
                    ErrorKind::NonStaticNat,
                    span,
                    format!("array size `{n}` is not statically known"),
                )
            })?;
            DataTy::Array(Box::new(force_literal_nats(e, span)?), Nat::lit(v))
        }
        DataTy::ArrayView(e, n) => {
            let v = n.as_lit().ok_or_else(|| {
                TypeError::new(
                    ErrorKind::NonStaticNat,
                    span,
                    format!("array size `{n}` is not statically known"),
                )
            })?;
            DataTy::ArrayView(Box::new(force_literal_nats(e, span)?), Nat::lit(v))
        }
        DataTy::Tuple(ts) => DataTy::Tuple(
            ts.iter()
                .map(|t| force_literal_nats(t, span))
                .collect::<TResult<_>>()?,
        ),
        DataTy::Ref(k, m, inner) => {
            DataTy::Ref(*k, m.clone(), Box::new(force_literal_nats(inner, span)?))
        }
        DataTy::At(inner, m) => DataTy::At(Box::new(force_literal_nats(inner, span)?), m.clone()),
        other => other.clone(),
    })
}

/// Extracts the scalar element kind and nested dimensions of an array.
fn scalar_and_dims(t: &DataTy, span: Span) -> TResult<(ScalarKind, Vec<Nat>)> {
    let mut dims = Vec::new();
    let mut cur = t;
    loop {
        match cur {
            DataTy::Array(e, n) | DataTy::ArrayView(e, n) => {
                dims.push(n.clone());
                cur = e;
            }
            DataTy::Scalar(s) => {
                let k = scalar_kind(*s, span)?;
                return Ok((k, dims));
            }
            other => {
                return Err(TypeError::new(
                    ErrorKind::Unsupported,
                    span,
                    format!("expected an array of scalars, found `{other}`"),
                ))
            }
        }
    }
}

fn scalar_kind(s: ScalarTy, span: Span) -> TResult<ScalarKind> {
    Ok(match s {
        ScalarTy::F64 => ScalarKind::F64,
        ScalarTy::F32 => ScalarKind::F32,
        ScalarTy::I32 => ScalarKind::I32,
        ScalarTy::U32 => ScalarKind::U32,
        ScalarTy::Bool => ScalarKind::Bool,
        other => {
            return Err(TypeError::new(
                ErrorKind::Unsupported,
                span,
                format!("scalar type `{other}` is not supported in kernels"),
            ))
        }
    })
}

fn dim_to_xyz(d: &Dim) -> [u64; 3] {
    let get = |c: DimCompo| d.size(c).and_then(Nat::as_lit).unwrap_or(1);
    [get(DimCompo::X), get(DimCompo::Y), get(DimCompo::Z)]
}

/// How a variable binding is realized.
#[derive(Clone, Debug)]
enum BindKind {
    /// A kernel parameter (a reference).
    KernelParam { index: usize, mem: Memory },
    /// A shared-memory allocation (kernel side).
    SharedAlloc { index: usize },
    /// A thread-private scalar local (kernel side).
    LocalScalar,
    /// A host-side `@`-allocation.
    HostBuffer { mem: Memory },
    /// A reference binding with a known referent.
    Alias {
        target: PlacePath,
        target_ty: DataTy,
        uniq: bool,
        target_mem: Option<MemKind>,
        target_dims: Vec<Nat>,
        target_elem: Option<ScalarKind>,
    },
    /// Moved out.
    Dead,
}

#[derive(Clone, Debug)]
struct Binding {
    ty: DataTy,
    mutable: bool,
    owner: ExecExpr,
    kind: BindKind,
}

#[derive(Clone, Debug)]
struct ExecBinding {
    expr: ExecExpr,
    introduced: Vec<usize>,
}

#[derive(Clone, Debug)]
struct BorrowRec {
    path: PlacePath,
    uniq: bool,
    scope_depth: usize,
    temp: bool,
}

/// A fully typed place, ready for recording and lowering.
#[derive(Clone, Debug)]
struct TypedPlace {
    path: PlacePath,
    ty: DataTy,
    mem: Option<MemKind>,
    root_dims: Vec<Nat>,
    elem: Option<ScalarKind>,
    writable: bool,
    /// Whether the place was reached through a reference binding (then
    /// borrow-conflict checks do not apply: the borrow itself grants the
    /// access).
    via_alias: bool,
    /// For a `zip(a, b)` place: the two component places, kept in step
    /// with the outer place (every later index/select/view is mirrored
    /// into both). A projection at the pair point routes the access to
    /// one component — its path, memory and root dimensions become the
    /// access, so each zip component keeps its own base buffer.
    zip: Option<Box<(TypedPlace, TypedPlace)>>,
    span: Span,
}

/// Applies one step to the zip components of `tp`, recursively, so
/// nested zips stay in step: every component (and its own components)
/// receives the same step the outer place just took.
fn zip_mirror(tp: &mut TypedPlace, apply: &dyn Fn(&mut TypedPlace) -> TResult<()>) -> TResult<()> {
    let Some(z) = tp.zip.as_deref_mut() else {
        return Ok(());
    };
    for c in [&mut z.0, &mut z.1] {
        apply(c)?;
        zip_mirror(c, apply)?;
    }
    Ok(())
}

/// Steps a component's type one array dimension inward (index/select
/// mirroring; `zip` is index-preserving per component, and component
/// lengths equal the outer length by the zip typing rule).
fn zip_component_elem(c: &TypedPlace, what: &str, span: Span) -> TResult<DataTy> {
    let (DataTy::Array(e, _) | DataTy::ArrayView(e, _)) = &c.ty else {
        return Err(TypeError::new(
            ErrorKind::MismatchedTypes,
            span,
            format!("cannot {what} zip component of type `{}`", c.ty),
        ));
    };
    Ok((**e).clone())
}

/// Mirrors an index step into the zip components of `tp`.
fn zip_mirror_index(tp: &mut TypedPlace, n: &Nat, span: Span) -> TResult<()> {
    zip_mirror(tp, &|c| {
        c.ty = zip_component_elem(c, "index", span)?;
        c.path.push(PathStep::Index(n.clone()));
        Ok(())
    })
}

/// Mirrors a select step into the zip components of `tp` (the outer
/// place already validated the extent).
fn zip_mirror_select(tp: &mut TypedPlace, sel: &SelectStep, span: Span) -> TResult<()> {
    zip_mirror(tp, &|c| {
        c.ty = zip_component_elem(c, "select from", span)?;
        c.path.push(PathStep::Select(sel.clone()));
        Ok(())
    })
}

/// Mirrors a view application into the zip components of `tp`.
/// Re-resolving against each component's own type keeps
/// length-dependent views (`reverse`, symbolic `group`) correct.
fn zip_mirror_view(tp: &mut TypedPlace, app: &ViewApp, defs: &ViewDefs, span: Span) -> TResult<()> {
    zip_mirror(tp, &|c| {
        let (steps, out_ty) = resolve_view_app(app, defs, &c.ty)
            .map_err(|e| TypeError::new(ErrorKind::ViewMisapplied, span, e.to_string()))?;
        for s in steps {
            c.path.push(PathStep::View(s));
        }
        c.ty = out_ty;
        Ok(())
    })
}

/// Mirrors a tuple projection into the zip components of `tp`; used
/// when a projection hits a *split* of a zip rather than the zip pair
/// itself.
fn zip_mirror_proj(tp: &mut TypedPlace, i: u8, span: Span) -> TResult<()> {
    zip_mirror(tp, &|c| {
        let DataTy::Tuple(parts) = &c.ty else {
            return Err(TypeError::new(
                ErrorKind::MismatchedTypes,
                span,
                format!("cannot project zip component of type `{}`", c.ty),
            ));
        };
        let idx = i as usize;
        if idx >= parts.len() {
            return Err(TypeError::new(
                ErrorKind::MismatchedTypes,
                span,
                "tuple projection out of range",
            ));
        }
        c.ty = parts[idx].clone();
        c.path.push(PathStep::Proj(i));
        Ok(())
    })
}

/// Whether `tp` sits at a zip *pair point*: its type is the pair of its
/// component types, i.e. the zip's array dimension has been fully
/// consumed and a projection must now route into one component.
fn at_zip_pair_point(tp: &TypedPlace) -> bool {
    match (&tp.zip, &tp.ty) {
        (Some(z), DataTy::Tuple(parts)) => {
            parts.len() == 2 && parts[0].same(&z.0.ty) && parts[1].same(&z.1.ty)
        }
        _ => false,
    }
}

/// Per-function checking context.
struct FnCx<'g, 'p> {
    gcx: &'g mut GlobalCx<'p>,
    nat_env: HashMap<String, u64>,
    bindings: HashMap<String, Binding>,
    exec_bindings: HashMap<String, ExecBinding>,
    scopes: Vec<Vec<String>>,
    accesses: Vec<(Access, u32)>,
    borrows: Vec<BorrowRec>,
    /// Barrier epoch: incremented by every `sync`. Accesses from
    /// different epochs that are provably confined to one block instance
    /// are ordered by the barrier and do not race.
    epoch: u32,
    exec: ExecExpr,
    shared_allocs: Vec<SharedAlloc>,
    local_names: HashSet<String>,
    /// When checking a host function, elaborated host statements are
    /// appended here (raw pointer to avoid a second mutable borrow of the
    /// output; valid for the lifetime of the check).
    host_out: Option<*mut Vec<HostStmt>>,
}

impl<'g, 'p> FnCx<'g, 'p> {
    fn new(gcx: &'g mut GlobalCx<'p>, nat_env: HashMap<String, u64>, exec: ExecExpr) -> Self {
        FnCx {
            gcx,
            nat_env,
            bindings: HashMap::new(),
            exec_bindings: HashMap::new(),
            scopes: vec![Vec::new()],
            accesses: Vec::new(),
            borrows: Vec::new(),
            epoch: 0,
            exec,
            shared_allocs: Vec::new(),
            local_names: HashSet::new(),
            host_out: None,
        }
    }

    fn on_gpu(&self) -> bool {
        !matches!(self.exec.base, descend_exec::ExecBase::CpuThread)
    }

    fn emit_host(&mut self, stmt: HostStmt) {
        if let Some(ptr) = self.host_out {
            // SAFETY: `host_out` points at a Vec that outlives the check
            // (set in `check_host_fn` and used only within it).
            unsafe { (*ptr).push(stmt) };
        }
    }

    fn bind(&mut self, name: &str, binding: Binding, span: Span) -> TResult<()> {
        if self.bindings.contains_key(name) || self.exec_bindings.contains_key(name) {
            return Err(TypeError::new(
                ErrorKind::Shadowing,
                span,
                format!("`{name}` is already bound; shadowing is not allowed"),
            ));
        }
        self.bindings.insert(name.to_string(), binding);
        self.scopes
            .last_mut()
            .expect("at least one scope")
            .push(name.to_string());
        Ok(())
    }

    fn bind_exec(&mut self, name: &str, eb: ExecBinding, span: Span) -> TResult<()> {
        if self.bindings.contains_key(name) || self.exec_bindings.contains_key(name) {
            return Err(TypeError::new(
                ErrorKind::Shadowing,
                span,
                format!("`{name}` is already bound; shadowing is not allowed"),
            ));
        }
        self.exec_bindings.insert(name.to_string(), eb);
        Ok(())
    }

    fn subst_nat(&self, n: &Nat, span: Span) -> TResult<Nat> {
        let s = n.subst(&|x| self.nat_env.get(x).map(|v| Nat::lit(*v)));
        match s.as_lit() {
            Some(v) => Ok(Nat::lit(v)),
            None => Err(TypeError::new(
                ErrorKind::NonStaticNat,
                span,
                format!("`{n}` is not statically known here"),
            )),
        }
    }

    // ------------------------------------------------------------- places

    fn type_place(&mut self, p: &PlaceExpr) -> TResult<TypedPlace> {
        match &p.kind {
            PlaceExprKind::Ident(x) => {
                let b = self.bindings.get(x).ok_or_else(|| {
                    TypeError::new(
                        ErrorKind::UnknownName,
                        p.span,
                        format!("unknown variable `{x}`"),
                    )
                })?;
                if matches!(b.kind, BindKind::Dead) {
                    return Err(TypeError::new(
                        ErrorKind::MovedValue,
                        p.span,
                        format!("`{x}` has been moved"),
                    ));
                }
                let (mem, root_dims, elem) = match &b.kind {
                    BindKind::SharedAlloc { index } => {
                        let sa = &self.shared_allocs[*index];
                        (
                            Some(MemKind::Shared(*index)),
                            sa.dims.iter().map(|d| Nat::lit(*d)).collect(),
                            Some(sa.elem),
                        )
                    }
                    BindKind::KernelParam { index, mem, .. }
                        if *mem == Memory::GpuGlobal && *index != usize::MAX =>
                    {
                        if let DataTy::Ref(_, _, inner) = &b.ty {
                            let (e, dims) = scalar_and_dims(inner, p.span)?;
                            (Some(MemKind::GlobalParam(*index)), dims, Some(e))
                        } else {
                            (None, Vec::new(), None)
                        }
                    }
                    _ => (None, Vec::new(), None),
                };
                let writable = match &b.kind {
                    BindKind::SharedAlloc { .. } | BindKind::HostBuffer { .. } => true,
                    BindKind::LocalScalar => b.mutable,
                    _ => b.mutable,
                };
                // The `@` annotation is ownership metadata; the place
                // itself holds the allocated value (so `tmp[[thread]]`
                // works directly on a `[f64; n] @ gpu.shared` binding).
                let place_ty = match &b.ty {
                    DataTy::At(inner, _) => (**inner).clone(),
                    other => other.clone(),
                };
                Ok(TypedPlace {
                    path: PlacePath::new(x.clone(), b.owner.clone()),
                    ty: place_ty,
                    mem,
                    root_dims,
                    elem,
                    writable,
                    via_alias: false,
                    zip: None,
                    span: p.span,
                })
            }
            PlaceExprKind::Deref(inner) => {
                // A deref of an alias binding substitutes the referent
                // (the paper: "aliases are resolved by substituting the
                // referenced place expressions").
                if let PlaceExprKind::Ident(x) = &inner.kind {
                    if let Some(Binding {
                        kind:
                            BindKind::Alias {
                                target,
                                target_ty,
                                uniq,
                                target_mem,
                                target_dims,
                                target_elem,
                            },
                        ..
                    }) = self.bindings.get(x)
                    {
                        let tp = TypedPlace {
                            path: target.clone(),
                            ty: target_ty.clone(),
                            mem: *target_mem,
                            root_dims: target_dims.clone(),
                            elem: *target_elem,
                            writable: *uniq,
                            via_alias: true,
                            zip: None,
                            span: p.span,
                        };
                        // The memory-context rule applies to the referent
                        // (paper Section 2.3): a reference into GPU memory
                        // cannot be dereferenced on the CPU and vice versa.
                        if let Some(space) = self.root_memory_space(&tp.path.root) {
                            let on_gpu = self.on_gpu();
                            let bad = match &space {
                                Memory::CpuMem => on_gpu,
                                Memory::GpuGlobal | Memory::GpuShared => !on_gpu,
                                Memory::Ident(_) => false,
                            };
                            if bad {
                                let who = if on_gpu { "gpu.Thread" } else { "cpu.thread" };
                                return Err(TypeError::new(
                                    ErrorKind::WrongExecutionContext,
                                    p.span,
                                    format!("cannot dereference pointer in `{space}` memory"),
                                )
                                .with_help(format!("this code is executed by `{who}`")));
                            }
                        }
                        return Ok(tp);
                    }
                }
                let mut tp = self.type_place(inner)?;
                let DataTy::Ref(kind, mem, pointee) = tp.ty.clone() else {
                    return Err(TypeError::new(
                        ErrorKind::MismatchedTypes,
                        p.span,
                        format!("cannot dereference non-reference type `{}`", tp.ty),
                    ));
                };
                // Memory-space / execution-context check (paper §2.3).
                let on_gpu = self.on_gpu();
                let bad = match mem {
                    Memory::CpuMem => on_gpu,
                    Memory::GpuGlobal | Memory::GpuShared => !on_gpu,
                    Memory::Ident(_) => false,
                };
                if bad {
                    let who = if on_gpu { "gpu.Thread" } else { "cpu.thread" };
                    return Err(TypeError::new(
                        ErrorKind::WrongExecutionContext,
                        p.span,
                        format!("cannot dereference pointer in `{mem}` memory"),
                    )
                    .with_help(format!("this code is executed by `{who}`")));
                }
                tp.path.push(PathStep::Deref);
                tp.ty = (*pointee).clone();
                tp.writable = kind == RefKind::Uniq;
                Ok(tp)
            }
            PlaceExprKind::Proj(inner, i) => {
                let mut tp = self.type_place(inner)?;
                // At a zip pair point, the projection routes the access
                // into one component: its path (own root and base
                // buffer), memory and dimensions become the place.
                if at_zip_pair_point(&tp) {
                    let z = *tp.zip.take().expect("pair point has components");
                    let mut routed = if *i == 0 { z.0 } else { z.1 };
                    routed.span = p.span;
                    return Ok(routed);
                }
                let DataTy::Tuple(parts) = &tp.ty else {
                    return Err(TypeError::new(
                        ErrorKind::MismatchedTypes,
                        p.span,
                        format!("`.fst`/`.snd` on non-tuple type `{}`", tp.ty),
                    ));
                };
                let idx = *i as usize;
                if idx >= parts.len() {
                    return Err(TypeError::new(
                        ErrorKind::MismatchedTypes,
                        p.span,
                        "tuple projection out of range",
                    ));
                }
                tp.ty = parts[idx].clone();
                tp.path.push(PathStep::Proj(*i));
                zip_mirror_proj(&mut tp, *i, p.span)?;
                Ok(tp)
            }
            PlaceExprKind::Index(inner, n) => {
                let mut tp = self.type_place(inner)?;
                let n = self.subst_nat(n, p.span)?;
                let (elem, len) = match &tp.ty {
                    DataTy::Array(e, l) | DataTy::ArrayView(e, l) => ((**e).clone(), l.clone()),
                    other => {
                        return Err(TypeError::new(
                            ErrorKind::MismatchedTypes,
                            p.span,
                            format!("cannot index non-array type `{other}`"),
                        ))
                    }
                };
                if let (Some(i), Some(l)) = (n.as_lit(), len.as_lit()) {
                    if i >= l {
                        return Err(TypeError::new(
                            ErrorKind::OutOfBounds,
                            p.span,
                            format!("index {i} out of bounds for array of size {l}"),
                        ));
                    }
                }
                tp.ty = elem;
                tp.path.push(PathStep::Index(n.clone()));
                zip_mirror_index(&mut tp, &n, p.span)?;
                Ok(tp)
            }
            PlaceExprKind::Select(inner, exec_var, dim) => {
                let mut tp = self.type_place(inner)?;
                let eb = self
                    .exec_bindings
                    .get(exec_var)
                    .ok_or_else(|| {
                        TypeError::new(
                            ErrorKind::UnknownName,
                            p.span,
                            format!("unknown execution resource `{exec_var}`"),
                        )
                    })?
                    .clone();
                let levels: Vec<usize> = match dim {
                    None => eb.introduced.clone(),
                    Some(d) => {
                        let found = eb.introduced.iter().copied().find(|i| {
                            matches!(
                                &eb.expr.ops[*i],
                                descend_exec::ExecOp::Forall(fd) if fd == d
                            )
                        });
                        vec![found.ok_or_else(|| {
                            TypeError::new(
                                ErrorKind::ScheduleError,
                                p.span,
                                format!("`{exec_var}` does not schedule dimension {d}"),
                            )
                        })?]
                    }
                };
                if levels.is_empty() {
                    return Err(TypeError::new(
                        ErrorKind::ScheduleError,
                        p.span,
                        format!("`{exec_var}` has no scheduled dimensions to select with"),
                    ));
                }
                for li in levels {
                    let extent = eb
                        .expr
                        .forall_levels()
                        .into_iter()
                        .find(|l| l.op_index == li)
                        .expect("introduced indices are forall levels")
                        .extent;
                    let (elem, len) = match &tp.ty {
                        DataTy::Array(e, l) | DataTy::ArrayView(e, l) => ((**e).clone(), l.clone()),
                        other => {
                            return Err(TypeError::new(
                                ErrorKind::MismatchedTypes,
                                p.span,
                                format!("cannot select from non-array type `{other}`"),
                            ))
                        }
                    };
                    if !len.equal(&extent) {
                        return Err(TypeError::new(
                            ErrorKind::SelectSizeMismatch,
                            p.span,
                            format!(
                                "select distributes {extent} resources over an array of size {len}"
                            ),
                        ));
                    }
                    tp.ty = elem;
                    let sel = SelectStep {
                        exec: eb.expr.clone(),
                        level_index: li,
                    };
                    tp.path.push(PathStep::Select(sel.clone()));
                    zip_mirror_select(&mut tp, &sel, p.span)?;
                }
                Ok(tp)
            }
            PlaceExprKind::View(inner, app) => {
                let mut tp = self.type_place(inner)?;
                let app = app.subst_nats(&|x| self.nat_env.get(x).map(|v| Nat::lit(*v)));
                let (steps, out_ty) =
                    resolve_view_app(&app, &self.gcx.views, &tp.ty).map_err(|e| {
                        TypeError::new(ErrorKind::ViewMisapplied, p.span, e.to_string())
                    })?;
                for s in steps {
                    tp.path.push(PathStep::View(s));
                }
                tp.ty = out_ty;
                // The clone only exists to release the borrow on self;
                // non-zip places (the common case) skip it entirely.
                if tp.zip.is_some() {
                    let views = self.gcx.views.clone();
                    zip_mirror_view(&mut tp, &app, &views, p.span)?;
                }
                Ok(tp)
            }
            PlaceExprKind::Zip(a, b) => {
                let ta = self.type_place(a)?;
                let tb = self.type_place(b)?;
                // Length equality is a nat constraint decided by
                // normalization (zip_ty); mismatches and undecidable
                // sizes are view-application errors.
                let ty = zip_ty(&ta.ty, &tb.ty).map_err(|e| {
                    TypeError::new(ErrorKind::ViewMisapplied, p.span, e.to_string())
                })?;
                // The outer pair place is unusable until projected; it
                // carries a `zip` view step so diagnostics and lowering
                // errors name the zip, and the real component places so
                // a later `.0`/`.1` can route.
                let mut path = ta.path.clone();
                path.push(PathStep::View(ViewStep::Zip));
                Ok(TypedPlace {
                    path,
                    ty,
                    mem: None,
                    root_dims: Vec::new(),
                    elem: None,
                    writable: false,
                    via_alias: ta.via_alias && tb.via_alias,
                    zip: Some(Box::new((ta, tb))),
                    span: p.span,
                })
            }
        }
    }

    /// Records an access, performing the paper's `access_safety_check`.
    fn record_access(&mut self, tp: &TypedPlace, mode: AccessMode, span: Span) -> TResult<()> {
        // An unprojected zip is not a memory region: its element is a
        // pair whose halves live in different buffers. Accesses must
        // first project with `.0`/`.1`, which routes to one component.
        if tp.zip.is_some() {
            return Err(TypeError::new(
                ErrorKind::ViewMisapplied,
                span,
                "a `zip` must be projected with `.0`/`.1` before it is accessed",
            ));
        }
        // Local scalars are thread-private; nothing to check.
        if tp.mem.is_none() && !self.is_trackable_root(&tp.path.root) {
            return Ok(());
        }
        let access = Access {
            path: tp.path.clone(),
            mode,
            exec: self.exec.clone(),
            span,
            display: tp.path.to_string(),
        };
        // 1. Narrowing.
        if let Some(missing) = narrowing_violation(&access.path, mode, &self.exec) {
            let lvl = &missing.missing[0];
            return Err(TypeError::new(
                ErrorKind::NarrowingViolation,
                span,
                format!(
                    "unique access to `{}` is not narrowed: no select distributes the {} {} level (extent {})",
                    access.display,
                    lvl.space.noun(),
                    lvl.dim,
                    lvl.extent
                ),
            )
            .with_help(format!(
                "insert the missing select: view `{0}` with `group::<..>` (or \
                 `split` it) into {2} parts and select one per {1} with \
                 `[[..]]`, so each of the {2} {1}s owns a distinct chunk",
                access.display,
                lvl.space.noun(),
                lvl.extent
            ))
            .with_help(
                "each execution resource must select its own distinct part of the memory",
            ));
        }
        // 2. Conflicts with prior accesses. A pair separated by a barrier
        // is ordered if both sides are confined to a single block
        // instance (their common prefix selects every block-space level):
        // the block-wide `sync` then happens-before-orders them.
        for (prior, prior_epoch) in &self.accesses {
            if may_race(&access, prior) {
                let barrier_between = *prior_epoch != self.epoch;
                if barrier_between && barrier_ordered(&access, prior) {
                    continue;
                }
                return Err(TypeError::new(
                    ErrorKind::ConflictingAccess,
                    span,
                    "cannot select memory because of a conflicting prior selection here",
                )
                .with_secondary(prior.span, format!("prior access of `{}`", prior.display)));
            }
        }
        // 3. Rust-style borrow conflicts (sequential aliasing). Accesses
        // that go *through* a reference binding are exempt: the borrow
        // itself grants them (alias substitution rewrote them to the
        // target path), and conflicting borrows were rejected at creation.
        let is_write = mode != AccessMode::Shrd;
        if !tp.via_alias {
            for b in &self.borrows {
                if (b.uniq || is_write) && may_overlap(&b.path, &access.path) {
                    return Err(TypeError::new(
                        ErrorKind::BorrowConflict,
                        span,
                        format!("cannot access `{}` while it is borrowed", access.display),
                    ));
                }
            }
        }
        self.accesses.push((access, self.epoch));
        Ok(())
    }

    /// The memory space the named root lives in, if any.
    fn root_memory_space(&self, root: &str) -> Option<Memory> {
        match self.bindings.get(root).map(|b| &b.kind) {
            Some(BindKind::HostBuffer { mem }) => Some(mem.clone()),
            Some(BindKind::SharedAlloc { .. }) => Some(Memory::GpuShared),
            Some(BindKind::KernelParam { mem, .. }) => Some(mem.clone()),
            _ => None,
        }
    }

    fn is_trackable_root(&self, root: &str) -> bool {
        matches!(
            self.bindings.get(root).map(|b| &b.kind),
            Some(
                BindKind::KernelParam { .. }
                    | BindKind::SharedAlloc { .. }
                    | BindKind::HostBuffer { .. }
            )
        )
    }

    // -------------------------------------------------------- expressions

    fn type_expr(&mut self, e: &Expr) -> TResult<(DataTy, Option<ElabExpr>)> {
        match &e.kind {
            ExprKind::Lit(l) => Ok(match l {
                Lit::F64(v) => (DataTy::f64(), Some(ElabExpr::Lit(ScalarKind::F64, *v))),
                Lit::F32(v) => (
                    DataTy::f32(),
                    Some(ElabExpr::Lit(ScalarKind::F32, *v as f64)),
                ),
                Lit::I32(v) => (
                    DataTy::i32(),
                    Some(ElabExpr::Lit(ScalarKind::I32, *v as f64)),
                ),
                Lit::U32(v) => (
                    DataTy::Scalar(ScalarTy::U32),
                    Some(ElabExpr::Lit(ScalarKind::U32, *v as f64)),
                ),
                Lit::Bool(v) => (
                    DataTy::Scalar(ScalarTy::Bool),
                    Some(ElabExpr::Lit(ScalarKind::Bool, f64::from(u8::from(*v)))),
                ),
                Lit::Unit => (DataTy::unit(), None),
            }),
            ExprKind::Place(p) => {
                let tp = self.type_place(p)?;
                if !tp.ty.is_copyable() {
                    // Move semantics: only whole variables can move.
                    if !tp.path.steps.is_empty() {
                        return Err(TypeError::new(
                            ErrorKind::Unsupported,
                            e.span,
                            format!("cannot move out of `{}`", tp.path),
                        ));
                    }
                    self.record_access(&tp, AccessMode::Uniq, e.span)?;
                    let b = self
                        .bindings
                        .get_mut(&tp.path.root)
                        .expect("typed place roots are bound");
                    b.kind = BindKind::Dead;
                    return Ok((tp.ty.clone(), None));
                }
                self.record_access(&tp, AccessMode::Shrd, e.span)?;
                let elab = self.elab_read(&tp);
                Ok((tp.ty, elab))
            }
            ExprKind::Borrow { uniq, place } => {
                let tp = self.type_place(place)?;
                let mode = if *uniq {
                    AccessMode::Uniq
                } else {
                    AccessMode::Shrd
                };
                if *uniq && !tp.writable && !self.is_owned_buffer(&tp) {
                    return Err(TypeError::new(
                        ErrorKind::NotWritable,
                        e.span,
                        format!("cannot uniquely borrow read-only place `{}`", tp.path),
                    ));
                }
                self.record_access(&tp, mode, e.span)?;
                self.borrows.push(BorrowRec {
                    path: tp.path.clone(),
                    uniq: *uniq,
                    scope_depth: self.scopes.len(),
                    temp: true,
                });
                let mem = self.place_memory(&tp)?;
                let kind = if *uniq { RefKind::Uniq } else { RefKind::Shrd };
                Ok((DataTy::Ref(kind, mem, Box::new(tp.ty.clone())), None))
            }
            ExprKind::Binary(op, a, b) => {
                let (ta, ea) = self.type_expr(a)?;
                let (tb, eb) = self.type_expr(b)?;
                if !ta.same(&tb) {
                    return Err(TypeError::new(
                        ErrorKind::MismatchedTypes,
                        e.span,
                        format!("operands of `{op}` have different types: `{ta}` vs `{tb}`"),
                    ));
                }
                let out_ty = if op.is_comparison() {
                    DataTy::Scalar(ScalarTy::Bool)
                } else if op.is_logical() {
                    if !ta.same(&DataTy::Scalar(ScalarTy::Bool)) {
                        return Err(TypeError::new(
                            ErrorKind::MismatchedTypes,
                            e.span,
                            format!("`{op}` requires booleans, found `{ta}`"),
                        ));
                    }
                    DataTy::Scalar(ScalarTy::Bool)
                } else {
                    if !matches!(ta, DataTy::Scalar(s) if s != ScalarTy::Bool && s != ScalarTy::Unit)
                    {
                        return Err(TypeError::new(
                            ErrorKind::MismatchedTypes,
                            e.span,
                            format!("`{op}` requires numeric operands, found `{ta}`"),
                        ));
                    }
                    ta.clone()
                };
                let elab = match (ea, eb) {
                    (Some(x), Some(y)) => Some(ElabExpr::Binary(*op, Box::new(x), Box::new(y))),
                    _ => None,
                };
                Ok((out_ty, elab))
            }
            ExprKind::Unary(op, a) => {
                let (ta, ea) = self.type_expr(a)?;
                match op {
                    UnOp::Neg => {
                        if !matches!(
                            ta,
                            DataTy::Scalar(
                                ScalarTy::F32 | ScalarTy::F64 | ScalarTy::I32 | ScalarTy::I64
                            )
                        ) {
                            return Err(TypeError::new(
                                ErrorKind::MismatchedTypes,
                                e.span,
                                format!("cannot negate `{ta}`"),
                            ));
                        }
                    }
                    UnOp::Not => {
                        if !ta.same(&DataTy::Scalar(ScalarTy::Bool)) {
                            return Err(TypeError::new(
                                ErrorKind::MismatchedTypes,
                                e.span,
                                format!("cannot apply `!` to `{ta}`"),
                            ));
                        }
                    }
                }
                Ok((ta, ea.map(|x| ElabExpr::Unary(*op, Box::new(x)))))
            }
            ExprKind::Shfl { kind, value, delta } => {
                self.check_shuffle_context(*kind, e.span)?;
                let d = self.subst_nat(delta, e.span)?;
                let d = d.as_lit().expect("substituted nats are literal");
                if d == 0 {
                    return Err(TypeError::new(
                        ErrorKind::ShuffleError,
                        e.span,
                        format!("`{kind}` with distance 0 exchanges nothing"),
                    )
                    .with_help(format!(
                        "use a distance between 1 and {} (below the warp size {})",
                        descend_exec::WARP_SIZE - 1,
                        descend_exec::WARP_SIZE
                    )));
                }
                if d >= descend_exec::WARP_SIZE {
                    return Err(TypeError::new(
                        ErrorKind::ShuffleError,
                        e.span,
                        format!(
                            "shuffle distance {d} reaches across the warp boundary (warp size {})",
                            descend_exec::WARP_SIZE
                        ),
                    )
                    .with_help(
                        "lanes can only exchange within their own warp; stage cross-warp \
                         values through shared memory and a `sync` instead",
                    ));
                }
                let (vty, velab) = self.type_expr(value)?;
                if !matches!(
                    vty,
                    DataTy::Scalar(ScalarTy::F64 | ScalarTy::F32 | ScalarTy::I32 | ScalarTy::U32)
                ) {
                    return Err(TypeError::new(
                        ErrorKind::MismatchedTypes,
                        value.span,
                        format!("`{kind}` exchanges numeric scalars, found `{vty}`"),
                    ));
                }
                let velab = velab.ok_or_else(|| {
                    TypeError::new(
                        ErrorKind::Unsupported,
                        value.span,
                        "shuffle operand cannot be lowered",
                    )
                })?;
                Ok((
                    vty,
                    Some(ElabExpr::Shfl {
                        kind: *kind,
                        value: Box::new(velab),
                        delta: d as u32,
                    }),
                ))
            }
            ExprKind::Alloc { .. } => Err(TypeError::new(
                ErrorKind::Unsupported,
                e.span,
                "`alloc` is only allowed as a `let` initializer",
            )),
            ExprKind::Call { .. } | ExprKind::Launch { .. } => Err(TypeError::new(
                ErrorKind::Unsupported,
                e.span,
                "calls are only allowed as statements or `let` initializers",
            )),
        }
    }

    fn is_owned_buffer(&self, tp: &TypedPlace) -> bool {
        matches!(
            self.bindings.get(&tp.path.root).map(|b| &b.kind),
            Some(BindKind::HostBuffer { .. } | BindKind::SharedAlloc { .. })
        )
    }

    fn place_memory(&self, tp: &TypedPlace) -> TResult<Memory> {
        match self.bindings.get(&tp.path.root).map(|b| &b.kind) {
            Some(BindKind::HostBuffer { mem }) => Ok(mem.clone()),
            Some(BindKind::SharedAlloc { .. }) => Ok(Memory::GpuShared),
            Some(BindKind::KernelParam { mem, .. }) => Ok(mem.clone()),
            Some(BindKind::Alias { .. })
            | Some(BindKind::LocalScalar)
            | Some(BindKind::Dead)
            | None => Err(TypeError::new(
                ErrorKind::Unsupported,
                tp.span,
                "cannot borrow this place",
            )),
        }
    }

    fn elab_read(&self, tp: &TypedPlace) -> Option<ElabExpr> {
        if !self.on_gpu() {
            return None;
        }
        match (&tp.mem, &tp.ty) {
            (Some(mem), DataTy::Scalar(s)) => {
                let elem = tp.elem.or_else(|| scalar_kind(*s, tp.span).ok())?;
                Some(ElabExpr::Load(ElabAccess {
                    path: tp.path.clone(),
                    root_dims: tp.root_dims.clone(),
                    mem: *mem,
                    elem,
                }))
            }
            (None, DataTy::Scalar(_)) => {
                if tp.path.steps.is_empty() {
                    Some(ElabExpr::Local(tp.path.root.clone()))
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    // --------------------------------------------------------- statements

    fn check_block(&mut self, b: &Block, outer: bool) -> TResult<Vec<ElabStmt>> {
        if !outer {
            self.scopes.push(Vec::new());
        }
        let mut out = Vec::new();
        for s in &b.stmts {
            self.check_stmt(s, &mut out)?;
            // Temporary borrows die at the end of each statement.
            self.borrows.retain(|br| !br.temp);
        }
        if !outer {
            let names = self.scopes.pop().expect("pushed above");
            for n in names {
                self.bindings.remove(&n);
            }
            let depth = self.scopes.len();
            self.borrows.retain(|br| br.scope_depth <= depth);
        }
        Ok(out)
    }

    fn check_stmt(&mut self, s: &Stmt, out: &mut Vec<ElabStmt>) -> TResult<()> {
        // Source-location marker for the statements this one elaborates
        // into: cost attribution in the simulator's launch traces.
        if self.on_gpu() && !s.span.is_dummy() {
            out.push(ElabStmt::Src(s.span));
        }
        match &s.kind {
            StmtKind::Let {
                name,
                mutable,
                ty,
                init,
            } => self.check_let(name, *mutable, ty.as_ref(), init, s.span, out),
            StmtKind::Assign { place, op, value } => {
                // Desugar `p += e` to `p = p + e` (reading p first).
                let value_expr = match op {
                    Some(binop) => Expr {
                        kind: ExprKind::Binary(
                            *binop,
                            Box::new(Expr {
                                kind: ExprKind::Place(place.clone()),
                                span: place.span,
                            }),
                            Box::new(value.clone()),
                        ),
                        span: s.span,
                    },
                    None => value.clone(),
                };
                let (vty, velab) = self.type_expr(&value_expr)?;
                let tp = self.type_place(place)?;
                if !tp.writable {
                    return Err(TypeError::new(
                        ErrorKind::NotWritable,
                        s.span,
                        format!("cannot write to `{}`", tp.path),
                    ));
                }
                if !tp.ty.same_modulo_view(&vty) {
                    return Err(TypeError::new(
                        ErrorKind::MismatchedTypes,
                        s.span,
                        format!("expected `{}`, found `{vty}`", tp.ty),
                    ));
                }
                self.record_access(&tp, AccessMode::Uniq, place.span)?;
                if self.on_gpu() {
                    let Some(velab) = velab else {
                        return Err(TypeError::new(
                            ErrorKind::Unsupported,
                            s.span,
                            "only scalar values can be stored on the GPU",
                        ));
                    };
                    match (&tp.mem, self.bindings.get(&tp.path.root).map(|b| &b.kind)) {
                        (Some(mem), _) => {
                            let elem = tp.elem.expect("memory-backed places have elements");
                            out.push(ElabStmt::Store {
                                access: ElabAccess {
                                    path: tp.path.clone(),
                                    root_dims: tp.root_dims.clone(),
                                    mem: *mem,
                                    elem,
                                },
                                value: velab,
                            });
                        }
                        (None, Some(BindKind::LocalScalar)) => {
                            out.push(ElabStmt::AssignLocal {
                                name: tp.path.root.clone(),
                                value: velab,
                            });
                        }
                        _ => {
                            return Err(TypeError::new(
                                ErrorKind::Unsupported,
                                s.span,
                                "unsupported assignment target on the GPU",
                            ))
                        }
                    }
                }
                Ok(())
            }
            StmtKind::Expr(e) => self.check_expr_stmt(e, out),
            StmtKind::ToWarps { var, exec, body } => {
                let eb = self.lookup_exec(exec, s.span)?;
                if !eb.expr.same(&self.exec) {
                    return Err(TypeError::new(
                        ErrorKind::ScheduleError,
                        s.span,
                        format!(
                            "`to_warps` must refine the current execution resource; `{exec}` is not it"
                        ),
                    ));
                }
                let new_exec = self
                    .exec
                    .to_warps()
                    .map_err(|e| TypeError::new(ErrorKind::ScheduleError, s.span, e.to_string()))?;
                let saved_exec = std::mem::replace(&mut self.exec, new_exec.clone());
                // No forall is introduced: the body sees the same
                // threads, now organized as warp space over lane space.
                self.bind_exec(
                    var,
                    ExecBinding {
                        expr: new_exec,
                        introduced: Vec::new(),
                    },
                    s.span,
                )?;
                let stmts = self.check_block(body, false)?;
                self.exec_bindings.remove(var);
                self.exec = saved_exec;
                out.extend(stmts);
                Ok(())
            }
            StmtKind::Sched {
                dims,
                var,
                exec,
                body,
            } => {
                let eb = self.lookup_exec(exec, s.span)?;
                if !eb.expr.same(&self.exec) {
                    return Err(TypeError::new(
                        ErrorKind::ScheduleError,
                        s.span,
                        format!(
                            "`sched` must refine the current execution resource; `{exec}` is not it"
                        ),
                    ));
                }
                let mut new_exec = self.exec.clone();
                let mut introduced = Vec::new();
                for d in dims {
                    new_exec = new_exec.forall(*d).map_err(|e| {
                        TypeError::new(ErrorKind::ScheduleError, s.span, e.to_string())
                    })?;
                    introduced.push(new_exec.ops.len() - 1);
                }
                let saved_exec = std::mem::replace(&mut self.exec, new_exec.clone());
                self.bind_exec(
                    var,
                    ExecBinding {
                        expr: new_exec,
                        introduced,
                    },
                    s.span,
                )?;
                let stmts = self.check_block(body, false)?;
                self.exec_bindings.remove(var);
                self.exec = saved_exec;
                out.extend(stmts);
                Ok(())
            }
            StmtKind::SplitExec {
                dim,
                exec,
                pos,
                fst_var,
                fst_body,
                snd_var,
                snd_body,
            } => {
                let eb = self.lookup_exec(exec, s.span)?;
                if !eb.expr.same(&self.exec) {
                    return Err(TypeError::new(
                        ErrorKind::ScheduleError,
                        s.span,
                        format!(
                            "`split` must refine the current execution resource; `{exec}` is not it"
                        ),
                    ));
                }
                let pos = self.subst_nat(pos, s.span)?;
                let space = self.exec.current_space().ok_or_else(|| {
                    TypeError::new(
                        ErrorKind::ScheduleError,
                        s.span,
                        "nothing left to split: the resource is a single thread",
                    )
                })?;
                // Absolute threshold: accumulated snd offsets plus pos.
                let offset = split_offset(&self.exec, space, *dim);
                let threshold = offset + pos.as_lit().expect("substituted nats are literal");
                let fst_exec = self
                    .exec
                    .split(*dim, pos.clone(), Side::Fst)
                    .map_err(|e| TypeError::new(ErrorKind::ScheduleError, s.span, e.to_string()))?;
                let snd_exec = self
                    .exec
                    .split(*dim, pos, Side::Snd)
                    .map_err(|e| TypeError::new(ErrorKind::ScheduleError, s.span, e.to_string()))?;
                let saved = self.exec.clone();
                // First branch.
                self.exec = fst_exec.clone();
                self.bind_exec(
                    fst_var,
                    ExecBinding {
                        expr: fst_exec,
                        introduced: Vec::new(),
                    },
                    s.span,
                )?;
                let fst_stmts = self.check_block(fst_body, false)?;
                self.exec_bindings.remove(fst_var);
                // Second branch.
                self.exec = snd_exec.clone();
                self.bind_exec(
                    snd_var,
                    ExecBinding {
                        expr: snd_exec,
                        introduced: Vec::new(),
                    },
                    s.span,
                )?;
                let snd_stmts = self.check_block(snd_body, false)?;
                self.exec_bindings.remove(snd_var);
                self.exec = saved;
                out.push(ElabStmt::Split {
                    space,
                    dim: *dim,
                    threshold,
                    fst: fst_stmts,
                    snd: snd_stmts,
                });
                Ok(())
            }
            StmtKind::ForNat { var, range, body } => {
                if self.nat_env.contains_key(var) || self.bindings.contains_key(var) {
                    return Err(TypeError::new(
                        ErrorKind::Shadowing,
                        s.span,
                        format!("loop variable `{var}` shadows an existing binding"),
                    ));
                }
                let env = self.nat_env.clone();
                let values = range
                    .values(&|x| env.get(x).copied())
                    .map_err(|m| TypeError::new(ErrorKind::NonStaticNat, s.span, m))?;
                for v in values {
                    self.nat_env.insert(var.clone(), v);
                    let stmts = self.check_block(body, false)?;
                    out.extend(stmts);
                    self.nat_env.remove(var);
                }
                Ok(())
            }
            StmtKind::Sync => {
                if !self.on_gpu() {
                    return Err(TypeError::new(
                        ErrorKind::WrongExecutionContext,
                        s.span,
                        "`sync` is a GPU barrier; it cannot run on the CPU",
                    ));
                }
                if self.exec.thread_space_has_split() {
                    return Err(TypeError::new(
                        ErrorKind::BarrierNotAllowed,
                        s.span,
                        "`sync` not performed by all threads in the block",
                    )
                    .with_help(
                        "the block is split here; barriers must be reached by every thread of the block",
                    )
                    .with_help(
                        "hoist the `sync` out of the `split { .. }` so every thread of the \
                         block reaches it, then split again for the divergent work",
                    ));
                }
                // The barrier orders all intra-block accesses: release the
                // recorded accesses to shared memory (per-block by
                // construction) and advance the barrier epoch. Both are
                // only sound when *every* block executes this sync, i.e.
                // the current resource is not under any split; a sync
                // inside a block-space split branch still emits a barrier
                // but conservatively keeps the records.
                let all_blocks_sync = !self
                    .exec
                    .ops
                    .iter()
                    .any(|op| matches!(op, descend_exec::ExecOp::Split { .. }));
                if all_blocks_sync {
                    let shared_roots: HashSet<String> = self
                        .bindings
                        .iter()
                        .filter(|(_, b)| matches!(b.kind, BindKind::SharedAlloc { .. }))
                        .map(|(n, _)| n.clone())
                        .collect();
                    self.accesses
                        .retain(|(a, _)| !shared_roots.contains(&a.path.root));
                    self.epoch += 1;
                }
                out.push(ElabStmt::Sync);
                Ok(())
            }
            StmtKind::AtomicRmw {
                op,
                place,
                index,
                value,
            } => self.check_atomic(*op, place, index.as_ref(), value, s.span, out),
            StmtKind::Scope(b) => {
                let stmts = self.check_block(b, false)?;
                out.extend(stmts);
                Ok(())
            }
        }
    }

    /// Checks an atomic RMW statement (paper-extension: the typed escape
    /// hatch for cross-thread accumulation). Atomics are the *only* way a
    /// place reachable by several threads may be mutated without
    /// narrowing selects: the access is recorded with
    /// [`AccessMode::Atomic`], which skips the narrowing rule and never
    /// conflicts with other atomics — while any plain read or write of an
    /// overlapping place still conflicts.
    fn check_atomic(
        &mut self,
        op: AtomicOp,
        place: &PlaceExpr,
        index: Option<&Expr>,
        value: &Expr,
        span: Span,
        out: &mut Vec<ElabStmt>,
    ) -> TResult<()> {
        if !self.on_gpu() {
            return Err(TypeError::new(
                ErrorKind::WrongExecutionContext,
                span,
                format!("`{op}` is a GPU operation; it cannot run on the CPU"),
            ));
        }
        let (vty, velab) = self.type_expr(value)?;
        let idx_elab = match index {
            Some(ix) => {
                let (ity, ielab) = self.type_expr(ix)?;
                if !matches!(ity, DataTy::Scalar(ScalarTy::I32 | ScalarTy::U32)) {
                    return Err(TypeError::new(
                        ErrorKind::MismatchedTypes,
                        ix.span,
                        format!("atomic element index must be `i32` or `u32`, found `{ity}`"),
                    ));
                }
                let ielab = ielab.ok_or_else(|| {
                    TypeError::new(
                        ErrorKind::Unsupported,
                        ix.span,
                        "atomic index cannot be lowered",
                    )
                })?;
                // The scatter index is spliced into the shared address
                // lowering as a pure expression; a shuffle (a warp-
                // synchronous instruction) cannot live there.
                if elab_contains_shfl(&ielab) {
                    return Err(TypeError::new(
                        ErrorKind::ShuffleError,
                        ix.span,
                        "shuffles cannot appear inside an atomic element index",
                    )
                    .with_help("bind the shuffled value to a local first"));
                }
                Some(ielab)
            }
            None => None,
        };
        let mut tp = self.type_place(place)?;
        if index.is_some() {
            // Scatter form: the place denotes a 1-D array; the element is
            // chosen at runtime. The path gains the DYN_IDX sentinel so
            // the address lowers through the ordinary pipeline.
            let (DataTy::Array(elem, _) | DataTy::ArrayView(elem, _)) = tp.ty.clone() else {
                return Err(TypeError::new(
                    ErrorKind::MismatchedTypes,
                    place.span,
                    format!(
                        "the scatter form of `{op}` targets an array place, found `{}`",
                        tp.ty
                    ),
                ));
            };
            if !matches!(*elem, DataTy::Scalar(_)) {
                return Err(TypeError::new(
                    ErrorKind::Unsupported,
                    place.span,
                    "atomic scatter targets must be arrays of scalars",
                ));
            }
            tp.ty = *elem;
            tp.path.push(PathStep::Index(Nat::var(DYN_IDX)));
        }
        let DataTy::Scalar(s) = tp.ty else {
            return Err(TypeError::new(
                ErrorKind::MismatchedTypes,
                place.span,
                format!("`{op}` targets a scalar place, found `{}`", tp.ty),
            ));
        };
        let elem = scalar_kind(s, place.span)?;
        if !matches!(elem, ScalarKind::I32 | ScalarKind::U32 | ScalarKind::F32) {
            return Err(TypeError::new(
                ErrorKind::MismatchedTypes,
                place.span,
                format!(
                    "atomic operations are supported on `i32`, `u32` and `f32` places, not `{s}`"
                ),
            ));
        }
        if matches!(op, AtomicOp::Min | AtomicOp::Max) && elem == ScalarKind::F32 {
            return Err(TypeError::new(
                ErrorKind::MismatchedTypes,
                place.span,
                "`atomic_min`/`atomic_max` require an integer place (no GPU target provides native f32 min/max atomics)",
            ));
        }
        if !tp.writable {
            return Err(TypeError::new(
                ErrorKind::NotWritable,
                span,
                format!("cannot atomically update read-only place `{}`", tp.path),
            ));
        }
        if !vty.same(&DataTy::Scalar(s)) {
            return Err(TypeError::new(
                ErrorKind::MismatchedTypes,
                value.span,
                format!("expected `{s}`, found `{vty}`"),
            ));
        }
        let Some(mem) = tp.mem else {
            return Err(TypeError::new(
                ErrorKind::Unsupported,
                place.span,
                "atomic operations require a place in `gpu.global` or `gpu.shared` memory",
            ));
        };
        self.record_access(&tp, AccessMode::Atomic, place.span)?;
        let velab = velab.ok_or_else(|| {
            TypeError::new(
                ErrorKind::Unsupported,
                value.span,
                "atomic operand cannot be lowered",
            )
        })?;
        out.push(ElabStmt::Atomic {
            op,
            access: ElabAccess {
                path: tp.path.clone(),
                root_dims: tp.root_dims.clone(),
                mem,
                elem,
            },
            index: idx_elab,
            value: velab,
        });
        Ok(())
    }

    /// Checks that the current execution resource may execute a shuffle:
    /// lanes of intact warps, in lockstep. Three conditions, each with
    /// its own diagnostic:
    ///
    /// 1. the resource descends through `to_warps` (shuffles exchange
    ///    between lanes, which only exist under warp scheduling),
    /// 2. warps and lanes are fully scheduled (the shuffle executes per
    ///    lane),
    /// 3. no lane-space split cuts through the warp (divergent warps
    ///    cannot exchange; CUDA leaves this undefined).
    fn check_shuffle_context(&self, kind: descend_ast::term::ShflKind, span: Span) -> TResult<()> {
        if !self.on_gpu() {
            return Err(TypeError::new(
                ErrorKind::WrongExecutionContext,
                span,
                format!("`{kind}` is a GPU warp operation; it cannot run on the CPU"),
            ));
        }
        if !self.exec.under_warps() {
            return Err(TypeError::new(
                ErrorKind::ShuffleError,
                span,
                format!("`{kind}` requires warp-level scheduling"),
            )
            .with_help(
                "re-interpret the block with `to_warps w in block { ... }` and schedule \
                 warps and lanes before shuffling",
            ));
        }
        if self.exec.current_space().is_some() {
            return Err(TypeError::new(
                ErrorKind::ShuffleError,
                span,
                format!("`{kind}` must be executed by individual lanes"),
            )
            .with_help("schedule the remaining warp/lane dimensions with `sched(X) ...` first"));
        }
        if self.exec.lane_space_has_split() {
            return Err(TypeError::new(
                ErrorKind::ShuffleError,
                span,
                format!("`{kind}` under a lane-space split: the warp is divergent"),
            )
            .with_help("every lane of the warp must execute the shuffle; split warps, not lanes"));
        }
        Ok(())
    }

    fn lookup_exec(&self, name: &str, span: Span) -> TResult<ExecBinding> {
        self.exec_bindings.get(name).cloned().ok_or_else(|| {
            TypeError::new(
                ErrorKind::UnknownName,
                span,
                format!("unknown execution resource `{name}`"),
            )
        })
    }

    fn check_let(
        &mut self,
        name: &str,
        mutable: bool,
        annotated: Option<&DataTy>,
        init: &Expr,
        span: Span,
        out: &mut Vec<ElabStmt>,
    ) -> TResult<()> {
        match &init.kind {
            ExprKind::Alloc { mem, ty } => {
                let ty = subst_ty(ty, &self.nat_env, span)?;
                match mem {
                    Memory::GpuShared => {
                        if !self.on_gpu() {
                            return Err(TypeError::new(
                                ErrorKind::WrongExecutionContext,
                                span,
                                "shared memory can only be allocated on the GPU",
                            ));
                        }
                        let (elem, dims) = scalar_and_dims(&ty, span)?;
                        let dims: Vec<u64> = dims
                            .iter()
                            .map(|d| d.as_lit().expect("substituted dims are literal"))
                            .collect();
                        let index = self.shared_allocs.len();
                        self.shared_allocs.push(SharedAlloc {
                            name: name.to_string(),
                            elem,
                            dims,
                        });
                        self.bind(
                            name,
                            Binding {
                                ty: DataTy::At(Box::new(ty), Memory::GpuShared),
                                mutable: false,
                                owner: self.exec.clone(),
                                kind: BindKind::SharedAlloc { index },
                            },
                            span,
                        )
                    }
                    Memory::CpuMem | Memory::GpuGlobal => {
                        if self.on_gpu() {
                            return Err(TypeError::new(
                                ErrorKind::WrongExecutionContext,
                                span,
                                format!("`{mem}` memory can only be allocated from the CPU"),
                            ));
                        }
                        let (elem, dims) = scalar_and_dims(&ty, span)?;
                        let len: u64 = dims
                            .iter()
                            .map(|d| d.as_lit().expect("substituted dims are literal"))
                            .product();
                        if *mem == Memory::CpuMem {
                            self.emit_host(HostStmt::AllocCpu {
                                name: name.to_string(),
                                elem,
                                len,
                            });
                        } else {
                            self.emit_host(HostStmt::AllocGpu {
                                name: name.to_string(),
                                elem,
                                len,
                            });
                        }
                        self.bind(
                            name,
                            Binding {
                                ty: DataTy::At(Box::new(ty), mem.clone()),
                                mutable: false,
                                owner: self.exec.clone(),
                                kind: BindKind::HostBuffer { mem: mem.clone() },
                            },
                            span,
                        )
                    }
                    Memory::Ident(_) => Err(TypeError::new(
                        ErrorKind::Unsupported,
                        span,
                        "cannot allocate in a polymorphic memory space",
                    )),
                }
            }
            ExprKind::Call {
                name: callee,
                nat_args,
                args,
            } if callee == builtins::GPU_ALLOC_COPY => {
                if !nat_args.is_empty() || args.len() != 1 {
                    return Err(TypeError::new(
                        ErrorKind::ArityMismatch,
                        span,
                        "`gpu_alloc_copy` takes exactly one reference argument",
                    ));
                }
                let (aty, _) = self.type_expr(&args[0])?;
                let DataTy::Ref(_, Memory::CpuMem, inner) = &aty else {
                    return Err(TypeError::new(
                        ErrorKind::MismatchedTypes,
                        args[0].span,
                        format!("expected reference to `cpu.mem`, found `{aty}`"),
                    ));
                };
                let src = whole_var_borrow(&args[0]).ok_or_else(|| {
                    TypeError::new(
                        ErrorKind::Unsupported,
                        args[0].span,
                        "`gpu_alloc_copy` requires a borrow of a whole variable",
                    )
                })?;
                let (elem, _) = scalar_and_dims(inner, span)?;
                self.emit_host(HostStmt::AllocGpuCopy {
                    name: name.to_string(),
                    src,
                    elem,
                });
                self.bind(
                    name,
                    Binding {
                        ty: DataTy::At(inner.clone(), Memory::GpuGlobal),
                        mutable: false,
                        owner: self.exec.clone(),
                        kind: BindKind::HostBuffer {
                            mem: Memory::GpuGlobal,
                        },
                    },
                    span,
                )
            }
            ExprKind::Borrow { uniq, place } => {
                let (rty, _) = self.type_expr(init)?;
                let tp = self.type_place(place)?;
                self.borrows.push(BorrowRec {
                    path: tp.path.clone(),
                    uniq: *uniq,
                    scope_depth: self.scopes.len(),
                    temp: false,
                });
                self.bind(
                    name,
                    Binding {
                        ty: rty,
                        mutable: false,
                        owner: self.exec.clone(),
                        kind: BindKind::Alias {
                            target: tp.path.clone(),
                            target_ty: tp.ty.clone(),
                            uniq: *uniq,
                            target_mem: tp.mem,
                            target_dims: tp.root_dims.clone(),
                            target_elem: tp.elem,
                        },
                    },
                    span,
                )
            }
            // Moving a whole host buffer transfers ownership: the new
            // name is the buffer from here on.
            ExprKind::Place(place)
                if !self.on_gpu()
                    && matches!(&place.kind, PlaceExprKind::Ident(x)
                        if matches!(self.bindings.get(x).map(|b| &b.kind),
                                    Some(BindKind::HostBuffer { .. }))) =>
            {
                let tp = self.type_place(place)?;
                let mem = self
                    .root_memory_space(&tp.path.root)
                    .expect("host buffers have a memory space");
                self.record_access(&tp, AccessMode::Uniq, span)?;
                let old = self
                    .bindings
                    .get_mut(&tp.path.root)
                    .expect("typed place roots are bound");
                let ty = old.ty.clone();
                old.kind = BindKind::Dead;
                self.bind(
                    name,
                    Binding {
                        ty,
                        mutable,
                        owner: self.exec.clone(),
                        kind: BindKind::HostBuffer { mem },
                    },
                    span,
                )
            }
            _ => {
                let (ty, elab) = self.type_expr(init)?;
                if let Some(ann) = annotated {
                    let ann = subst_ty(ann, &self.nat_env, span)?;
                    if !ann.same_modulo_view(&ty) {
                        return Err(TypeError::new(
                            ErrorKind::MismatchedTypes,
                            span,
                            format!("expected `{ann}`, found `{ty}`"),
                        ));
                    }
                }
                match &ty {
                    DataTy::Scalar(sc) if self.on_gpu() => {
                        let elem = scalar_kind(*sc, span)?;
                        let Some(elab) = elab else {
                            return Err(TypeError::new(
                                ErrorKind::Unsupported,
                                span,
                                "initializer cannot be lowered",
                            ));
                        };
                        self.local_names.insert(name.to_string());
                        out.push(ElabStmt::Local {
                            name: name.to_string(),
                            elem,
                            init: elab,
                        });
                        self.bind(
                            name,
                            Binding {
                                ty,
                                mutable,
                                owner: self.exec.clone(),
                                kind: BindKind::LocalScalar,
                            },
                            span,
                        )
                    }
                    _ => self.bind(
                        name,
                        Binding {
                            ty,
                            mutable,
                            owner: self.exec.clone(),
                            kind: BindKind::LocalScalar,
                        },
                        span,
                    ),
                }
            }
        }
    }

    fn check_expr_stmt(&mut self, e: &Expr, _out: &mut [ElabStmt]) -> TResult<()> {
        match &e.kind {
            ExprKind::Launch {
                name,
                nat_args,
                grid_dim,
                block_dim,
                args,
            } => {
                if self.on_gpu() {
                    return Err(TypeError::new(
                        ErrorKind::WrongExecutionContext,
                        e.span,
                        "kernels can only be launched from the CPU",
                    ));
                }
                self.check_launch(name, nat_args, grid_dim, block_dim, args, e.span)
            }
            ExprKind::Call {
                name,
                nat_args,
                args,
            } => {
                if builtins::is_intrinsic(name) {
                    self.check_intrinsic_call(name, nat_args, args, e.span)
                } else {
                    Err(TypeError::new(
                        ErrorKind::UnknownName,
                        e.span,
                        format!("unknown function `{name}` (user-defined calls are not supported)"),
                    ))
                }
            }
            _ => {
                let _ = self.type_expr(e)?;
                Ok(())
            }
        }
    }

    fn check_intrinsic_call(
        &mut self,
        name: &str,
        nat_args: &[Nat],
        args: &[Expr],
        span: Span,
    ) -> TResult<()> {
        if self.on_gpu() {
            return Err(TypeError::new(
                ErrorKind::WrongExecutionContext,
                span,
                format!("`{name}` is a host API; it cannot run on the GPU"),
            ));
        }
        if !nat_args.is_empty() {
            return Err(TypeError::new(
                ErrorKind::ArityMismatch,
                span,
                format!("`{name}` takes no nat arguments"),
            ));
        }
        match name {
            builtins::COPY_MEM_TO_HOST | builtins::COPY_MEM_TO_GPU => {
                if args.len() != 2 {
                    return Err(TypeError::new(
                        ErrorKind::ArityMismatch,
                        span,
                        format!("`{name}` takes exactly two arguments"),
                    ));
                }
                let (t0, _) = self.type_expr(&args[0])?;
                let (t1, _) = self.type_expr(&args[1])?;
                let (want_dst, want_src) = if name == builtins::COPY_MEM_TO_HOST {
                    (Memory::CpuMem, Memory::GpuGlobal)
                } else {
                    (Memory::GpuGlobal, Memory::CpuMem)
                };
                let DataTy::Ref(k0, m0, inner0) = &t0 else {
                    return Err(TypeError::new(
                        ErrorKind::MismatchedTypes,
                        args[0].span,
                        format!("expected a reference, found `{t0}`"),
                    ));
                };
                let DataTy::Ref(_, m1, inner1) = &t1 else {
                    return Err(TypeError::new(
                        ErrorKind::MismatchedTypes,
                        args[1].span,
                        format!("expected a reference, found `{t1}`"),
                    ));
                };
                if *m0 != want_dst {
                    return Err(TypeError::new(
                        ErrorKind::MismatchedTypes,
                        args[0].span,
                        format!("expected reference to `{want_dst}`, found reference to `{m0}`"),
                    ));
                }
                if *m1 != want_src {
                    return Err(TypeError::new(
                        ErrorKind::MismatchedTypes,
                        args[1].span,
                        format!("expected reference to `{want_src}`, found reference to `{m1}`"),
                    ));
                }
                if *k0 != RefKind::Uniq {
                    return Err(TypeError::new(
                        ErrorKind::NotWritable,
                        args[0].span,
                        "the destination must be a unique reference",
                    ));
                }
                if !inner0.same_modulo_view(inner1) {
                    return Err(TypeError::new(
                        ErrorKind::MismatchedTypes,
                        span,
                        format!("source and destination differ: `{inner0}` vs `{inner1}`"),
                    ));
                }
                let dst = whole_var_borrow(&args[0]).ok_or_else(|| {
                    TypeError::new(
                        ErrorKind::Unsupported,
                        args[0].span,
                        "transfers require borrows of whole variables",
                    )
                })?;
                let src = whole_var_borrow(&args[1]).ok_or_else(|| {
                    TypeError::new(
                        ErrorKind::Unsupported,
                        args[1].span,
                        "transfers require borrows of whole variables",
                    )
                })?;
                if name == builtins::COPY_MEM_TO_HOST {
                    self.emit_host(HostStmt::CopyToHost { dst, src });
                } else {
                    self.emit_host(HostStmt::CopyToGpu { dst, src });
                }
                Ok(())
            }
            builtins::GPU_ALLOC_COPY => Err(TypeError::new(
                ErrorKind::Unsupported,
                span,
                "`gpu_alloc_copy` must be used as a `let` initializer",
            )),
            _ => unreachable!("is_intrinsic checked by caller"),
        }
    }

    fn check_launch(
        &mut self,
        name: &str,
        nat_args: &[Nat],
        grid_dim: &Dim,
        block_dim: &Dim,
        args: &[Expr],
        span: Span,
    ) -> TResult<()> {
        let fndef = self
            .gcx
            .program
            .fn_def(name)
            .ok_or_else(|| {
                TypeError::new(
                    ErrorKind::UnknownName,
                    span,
                    format!("unknown kernel `{name}`"),
                )
            })?
            .clone();
        if !matches!(fndef.sig.exec_ty, ExecTy::GpuGrid(..)) {
            return Err(TypeError::new(
                ErrorKind::LaunchConfigMismatch,
                span,
                format!("`{name}` is not a GPU kernel"),
            ));
        }
        // Evaluate nat arguments.
        let mut nat_vals = Vec::new();
        for n in nat_args {
            nat_vals.push(
                n.eval(&|x| self.nat_env.get(x).copied())
                    .map_err(|e| TypeError::new(ErrorKind::NonStaticNat, span, e.to_string()))?,
            );
        }
        if fndef.sig.generics.len() != nat_vals.len() {
            return Err(TypeError::new(
                ErrorKind::ArityMismatch,
                span,
                format!(
                    "kernel `{name}` expects {} generic argument(s), found {}",
                    fndef.sig.generics.len(),
                    nat_vals.len()
                ),
            ));
        }
        let mut kernel_env = self.gcx.nat_env();
        for ((gname, _), v) in fndef.sig.generics.iter().zip(&nat_vals) {
            kernel_env.insert(gname.clone(), *v);
        }
        // Check the launch configuration against the annotation.
        let ExecTy::GpuGrid(want_grid, want_block) = &fndef.sig.exec_ty else {
            unreachable!("checked above");
        };
        let want_grid = subst_dim(want_grid, &kernel_env, span)?;
        let want_block = subst_dim(want_block, &kernel_env, span)?;
        let launch_grid = subst_dim(grid_dim, &self.nat_env, span)?;
        let launch_block = subst_dim(block_dim, &self.nat_env, span)?;
        if !launch_grid.same(&want_grid) || !launch_block.same(&want_block) {
            return Err(TypeError::new(
                ErrorKind::LaunchConfigMismatch,
                span,
                format!(
                    "kernel `{name}` expects grid `{want_grid}` of blocks `{want_block}`, launched with `{launch_grid}` of `{launch_block}`"
                ),
            ));
        }
        // Check argument types against parameter types.
        if args.len() != fndef.sig.params.len() {
            return Err(TypeError::new(
                ErrorKind::ArityMismatch,
                span,
                format!(
                    "kernel `{name}` expects {} argument(s), found {}",
                    fndef.sig.params.len(),
                    args.len()
                ),
            ));
        }
        let mut arg_names = Vec::new();
        for (arg, param) in args.iter().zip(&fndef.sig.params) {
            let (aty, _) = self.type_expr(arg)?;
            let pty = subst_ty(&param.ty, &kernel_env, span)?;
            if !aty.same_modulo_view(&pty) {
                let (ashow, pshow) = (strip_ref(&aty), strip_ref(&pty));
                return Err(TypeError::new(
                    ErrorKind::MismatchedTypes,
                    arg.span,
                    format!("expected `{pshow}`, found `{ashow}`"),
                )
                .with_help(format!(
                    "kernel parameter `{}` has type `{pty}`",
                    param.name
                )));
            }
            let root = whole_var_borrow(arg).ok_or_else(|| {
                TypeError::new(
                    ErrorKind::Unsupported,
                    arg.span,
                    "kernel arguments must be borrows of whole variables",
                )
            })?;
            arg_names.push(root);
        }
        // Instantiate (checks body once per distinct instantiation).
        let idx = self.gcx.instantiate_kernel(&fndef, &nat_vals, span)?;
        self.emit_host(HostStmt::Launch {
            kernel: idx,
            args: arg_names,
        });
        Ok(())
    }
}

/// The offset contributed by enclosing `snd` splits on a dimension.
fn split_offset(exec: &ExecExpr, space: Space, dim: DimCompo) -> u64 {
    let mut offset = 0u64;
    let mut prefix = ExecExpr {
        base: exec.base.clone(),
        ops: Vec::new(),
    };
    for op in &exec.ops {
        if let descend_exec::ExecOp::Split {
            dim: d,
            pos,
            side: Side::Snd,
        } = op
        {
            if *d == dim && prefix.current_space() == Some(space) {
                offset += pos.as_lit().unwrap_or(0);
            }
        }
        prefix.ops.push(op.clone());
    }
    offset
}

/// Whether two potentially racing accesses are ordered by a block-wide
/// barrier between them: both must be confined to a single block instance,
/// i.e. their longest common equal step prefix contains a select for every
/// block-space forall level (levels of extent 1 need none). Overlapping
/// executors then necessarily share the block coordinate, and the barrier
/// synchronizes that block.
fn barrier_ordered(a: &Access, b: &Access) -> bool {
    let mut prefix_selects: Vec<&SelectStep> = Vec::new();
    for (sa, sb) in a.path.steps.iter().zip(&b.path.steps) {
        if !sa.same(sb) {
            break;
        }
        if let PathStep::Select(sel) = sa {
            prefix_selects.push(sel);
        }
    }
    let confined = |exec: &ExecExpr| {
        exec.forall_levels()
            .into_iter()
            .filter(|l| l.space == Space::Block && l.extent.as_lit() != Some(1))
            .all(|l| {
                prefix_selects.iter().any(|sel| {
                    sel.level_index == l.op_index && sel.exec.ops.len() > l.op_index && {
                        let pa = ExecExpr {
                            base: sel.exec.base.clone(),
                            ops: sel.exec.ops[..=l.op_index].to_vec(),
                        };
                        let pb = ExecExpr {
                            base: exec.base.clone(),
                            ops: exec.ops[..=l.op_index].to_vec(),
                        };
                        pa.same(&pb)
                    }
                })
            })
    };
    confined(&a.exec) && confined(&b.exec)
}

/// Whether an elaborated expression contains a warp shuffle anywhere.
fn elab_contains_shfl(e: &ElabExpr) -> bool {
    match e {
        ElabExpr::Shfl { .. } => true,
        ElabExpr::Binary(_, a, b) => elab_contains_shfl(a) || elab_contains_shfl(b),
        ElabExpr::Unary(_, a) => elab_contains_shfl(a),
        ElabExpr::Lit(..) | ElabExpr::Local(_) | ElabExpr::Load(_) => false,
    }
}

fn strip_ref(t: &DataTy) -> String {
    match t {
        DataTy::Ref(_, _, inner) => inner.to_string(),
        other => other.to_string(),
    }
}

fn whole_var_borrow(e: &Expr) -> Option<String> {
    match &e.kind {
        ExprKind::Borrow { place, .. } => match &place.kind {
            PlaceExprKind::Ident(x) => Some(x.clone()),
            _ => None,
        },
        _ => None,
    }
}
