//! Additional safe/unsafe parallel access patterns through views: the
//! positive/negative twins that pin down the boundary of the conflict
//! analysis.

use descend_typeck::{check_program, ElabStmt, ErrorKind};

fn check(src: &str) -> Result<descend_typeck::CheckedProgram, descend_typeck::TypeError> {
    let prog = descend_parser::parse(src).expect("test sources parse");
    check_program(&prog)
}

fn expect_err(src: &str, kind: ErrorKind) {
    match check(src) {
        Ok(_) => panic!("expected {kind:?}, but the program type-checked"),
        Err(e) => assert_eq!(e.kind, kind, "wrong error: {e}"),
    }
}

/// Writing through `rev` is safe when fully selected: reverse is a
/// bijection, so distinct threads write distinct elements.
#[test]
fn reversed_write_is_safe() {
    check(
        r#"
fn k(inp: & gpu.global [f64; 64], out: &uniq gpu.global [f64; 64])
-[grid: gpu.grid<X<1>, X<64>>]-> () {
    sched(X) block in grid {
        sched(X) thread in block {
            (*out).rev[[thread]] = (*inp)[[thread]];
        }
    }
}
"#,
    )
    .expect("bijective reversed writes are race-free");
}

/// Two writes to the same root through *different* bijections conflict:
/// thread i's rev target may equal thread j's plain target.
#[test]
fn mixed_bijection_writes_conflict() {
    expect_err(
        r#"
fn k(out: &uniq gpu.global [f64; 64])
-[grid: gpu.grid<X<1>, X<64>>]-> () {
    sched(X) block in grid {
        sched(X) thread in block {
            (*out).rev[[thread]] = 1.0;
            (*out)[[thread]] = 2.0;
        }
    }
}
"#,
        ErrorKind::ConflictingAccess,
    );
}

/// The same bijection twice does not conflict: per-thread targets are
/// identical across the two statements.
#[test]
fn repeated_bijection_writes_are_safe() {
    check(
        r#"
fn k(out: &uniq gpu.global [f64; 64])
-[grid: gpu.grid<X<1>, X<64>>]-> () {
    sched(X) block in grid {
        sched(X) thread in block {
            (*out).rev[[thread]] = 1.0;
            (*out).rev[[thread]] = 2.0;
        }
    }
}
"#,
    )
    .expect("identical chains re-write the same element per thread");
}

/// A transposed 2-D write distributed over a 2-D block is safe.
#[test]
fn transposed_2d_write_is_safe() {
    check(
        r#"
fn k(out: &uniq gpu.global [[f64; 16]; 16])
-[grid: gpu.grid<X<1>, XY<16,16>>]-> () {
    sched(X) block in grid {
        sched(Y,X) thread in block {
            (*out).transpose[[thread]] = 1.0;
        }
    }
}
"#,
    )
    .expect("transpose is a bijection");
}

/// Constant indices compose with selects on either side, and both are
/// exclusive: `group::<8>[0][[thread]]` distributes group 0 over the
/// threads, while `group::<8>[[thread]][0]` gives each thread element 0
/// of *its own* group — distinct threads, distinct groups, no overlap.
#[test]
fn constant_index_before_and_after_select_are_exclusive() {
    check(
        r#"
fn k(out: &uniq gpu.global [f64; 64])
-[grid: gpu.grid<X<1>, X<8>>]-> () {
    sched(X) block in grid {
        sched(X) thread in block {
            (*out).group::<8>[0][[thread]] = 1.0;
        }
    }
}
"#,
    )
    .expect("a fixed group distributed over all threads is exclusive");
    check(
        r#"
fn k(out: &uniq gpu.global [f64; 64])
-[grid: gpu.grid<X<1>, X<8>>]-> () {
    sched(X) block in grid {
        sched(X) thread in block {
            (*out).group::<8>[[thread]][0] = 1.0;
        }
    }
}
"#,
    )
    .expect("element 0 of each thread's own group is exclusive");
    // Two statements hitting different constant slots of the same group
    // stay disjoint; the same slot twice is a per-thread re-write (fine);
    // but slot 0 of *the whole array* without any select is rejected
    // (covered by paper_examples::unselected_write_rejected).
}

/// Selecting the transposed group dimension then indexing is narrowed:
/// `group::<8>.transpose[[thread]]` hands thread t position t of every
/// group.
#[test]
fn select_group_then_constant_index_is_exclusive() {
    // 64 elements, groups of 8 -> 8 groups over 8 threads: thread t owns
    // group t entirely, so writing element 0 of its group is exclusive.
    check(
        r#"
fn k(out: &uniq gpu.global [f64; 64])
-[grid: gpu.grid<X<1>, X<8>>]-> () {
    sched(X) block in grid {
        sched(X) thread in block {
            (*out).group::<8>.transpose[[thread]][0] = 1.0;
        }
    }
}
"#,
    )
    .expect("transpose makes the outer dim the 8 positions; each thread owns one");
}

/// Disjoint halves written through different view chains on each side of
/// a split are accepted.
#[test]
fn split_with_reversed_half_is_safe() {
    check(
        r#"
fn k(out: &uniq gpu.global [f64; 64])
-[grid: gpu.grid<X<1>, X<64>>]-> () {
    sched(X) block in grid {
        let tmp = alloc::<gpu.shared, [f64; 64]>();
        split(X) block at 32 {
            lo => {
                sched(X) t in lo { tmp.split::<32>.fst.rev[[t]] = 1.0; }
            },
            hi => {
                sched(X) t in hi { tmp.split::<32>.snd[[t]] = 2.0; }
            }
        }
        sync;
        sched(X) thread in block {
            (*out)[[thread]] = tmp[[thread]];
        }
    }
}
"#,
    )
    .expect("halves stay disjoint regardless of the inner bijection");
}

/// Nested named views compose with user definitions.
#[test]
fn user_view_composition() {
    check(
        r#"
view quarters<n: nat> = group::<n / 4>;
view quarter_rows<n: nat> = quarters::<n>.map(reverse);

fn k(out: &uniq gpu.global [f64; 64])
-[grid: gpu.grid<X<1>, X<16>>]-> () {
    sched(X) block in grid {
        sched(X) thread in block {
            (*out).quarter_rows::<64>.transpose[[thread]][2] = 1.0;
        }
    }
}
"#,
    )
    .expect("named views expand recursively");
}

/// Compound assignment on the GPU reads then writes the same element.
#[test]
fn compound_assign_kernel() {
    let out = check(
        r#"
fn k(v: &uniq gpu.global [f64; 64]) -[grid: gpu.grid<X<2>, X<32>>]-> () {
    sched(X) block in grid {
        sched(X) thread in block {
            (*v).group::<32>[[block]][[thread]] += 5.0;
        }
    }
}
"#,
    )
    .expect("+= desugars to a safe read-modify-write");
    // One store whose value contains one load (net of `ElabStmt::Src`
    // trace-attribution markers).
    let k = &out.kernels[0];
    let stores = k
        .body
        .iter()
        .filter(|s| !matches!(s, ElabStmt::Src(_)))
        .count();
    assert_eq!(stores, 1);
}

/// Selecting with a sibling's execution variable from outside its scope
/// is unknown.
#[test]
fn out_of_scope_exec_var_rejected() {
    expect_err(
        r#"
fn k(v: &uniq gpu.global [f64; 64]) -[grid: gpu.grid<X<1>, X<64>>]-> () {
    sched(X) block in grid {
        sched(X) thread in block { }
        sched(X) t2 in block {
            (*v)[[thread]] = 1.0;
        }
    }
}
"#,
        ErrorKind::UnknownName,
    );
}

/// A 3-elements-per-thread pattern: group by threads, iterate the rest.
#[test]
fn multiple_elements_per_thread() {
    check(
        r#"
fn k(v: &uniq gpu.global [f64; 192]) -[grid: gpu.grid<X<1>, X<64>>]-> () {
    sched(X) block in grid {
        sched(X) thread in block {
            for i in [0..3] {
                (*v).group::<3>[[thread]][i] = 1.0;
            }
        }
    }
}
"#,
    )
    .expect("each thread owns a group of 3");
}
