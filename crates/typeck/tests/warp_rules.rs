//! Typing rules for warp-level execution resources and shuffles.
//!
//! `to_warps` re-interprets a block's 1-D thread space as warps of
//! lanes; `shfl_down`/`shfl_xor` exchange register values between the
//! lanes of one warp. These tests pin the accept/reject boundary:
//! intra-warp exchanges need no barrier, while anything that would reach
//! across a warp (distance ≥ 32, divergent lane splits, shuffles outside
//! warp scheduling) is rejected.

use descend_typeck::{check_program, ElabExpr, ElabStmt, ErrorKind};

fn check(src: &str) -> Result<descend_typeck::CheckedProgram, descend_typeck::TypeError> {
    let prog = descend_parser::parse(src).expect("test sources parse");
    check_program(&prog)
}

fn expect_err(src: &str, kind: ErrorKind) {
    match check(src) {
        Ok(_) => panic!("expected {kind:?}, but the program type-checked"),
        Err(e) => assert_eq!(e.kind, kind, "wrong error: {e}"),
    }
}

/// The canonical warp butterfly: every lane accumulates the full warp
/// sum without shared memory or barriers, then writes its own slot.
const WARP_SUM: &str = r#"
fn warp_sum(inp: & gpu.global [f64; 64], out: &uniq gpu.global [f64; 64])
-[grid: gpu.grid<X<1>, X<64>>]-> () {
    sched(X) block in grid {
        to_warps wb in block {
            sched(X) warp in wb {
                sched(X) lane in warp {
                    let mut v = (*inp).group::<32>[[warp]][[lane]];
                    for d in halving(16) {
                        v = v + shfl_xor(v, d);
                    }
                    (*out).group::<32>[[warp]][[lane]] = v;
                }
            }
        }
    }
}
"#;

#[test]
fn warp_butterfly_sum_typechecks() {
    let out = check(WARP_SUM).expect("warp butterfly is safe");
    assert_eq!(out.kernels.len(), 1);
    // Five unrolled shuffle rounds (16, 8, 4, 2, 1).
    fn count_shfls(e: &ElabExpr) -> usize {
        match e {
            ElabExpr::Shfl { value, .. } => 1 + count_shfls(value),
            ElabExpr::Binary(_, a, b) => count_shfls(a) + count_shfls(b),
            ElabExpr::Unary(_, a) => count_shfls(a),
            _ => 0,
        }
    }
    let mut shfls = 0;
    for s in &out.kernels[0].body {
        if let ElabStmt::AssignLocal { value, .. } = s {
            shfls += count_shfls(value);
        }
    }
    assert_eq!(shfls, 5, "halving(16) unrolls to five shuffle rounds");
}

/// A shuffle without warp scheduling is rejected: plain threads have no
/// lanes to exchange with.
#[test]
fn shuffle_outside_warps_rejected() {
    expect_err(
        r#"
fn k(out: &uniq gpu.global [f64; 64]) -[grid: gpu.grid<X<1>, X<64>>]-> () {
    sched(X) block in grid {
        sched(X) thread in block {
            let mut v = 1.0;
            v = v + shfl_down(v, 16);
            (*out)[[block]][[thread]] = v;
        }
    }
}
"#,
        ErrorKind::ShuffleError,
    );
}

/// Distance 32 would read the same lane of the *next* warp — the
/// cross-warp exchange shuffles cannot express.
#[test]
fn cross_warp_shuffle_distance_rejected() {
    expect_err(
        r#"
fn k(out: &uniq gpu.global [f64; 64]) -[grid: gpu.grid<X<1>, X<64>>]-> () {
    sched(X) block in grid {
        to_warps wb in block {
            sched(X) warp in wb {
                sched(X) lane in warp {
                    let mut v = 1.0;
                    v = v + shfl_down(v, 32);
                    (*out).group::<32>[[warp]][[lane]] = v;
                }
            }
        }
    }
}
"#,
        ErrorKind::ShuffleError,
    );
}

#[test]
fn zero_distance_shuffle_rejected() {
    expect_err(
        r#"
fn k(out: &uniq gpu.global [f64; 64]) -[grid: gpu.grid<X<1>, X<64>>]-> () {
    sched(X) block in grid {
        to_warps wb in block {
            sched(X) warp in wb {
                sched(X) lane in warp {
                    let mut v = 1.0;
                    v = v + shfl_down(v, 0);
                    (*out).group::<32>[[warp]][[lane]] = v;
                }
            }
        }
    }
}
"#,
        ErrorKind::ShuffleError,
    );
}

/// A lane-space split makes the warp divergent; shuffles under it are
/// rejected (CUDA leaves divergent `__shfl_*_sync` undefined).
#[test]
fn shuffle_under_lane_split_rejected() {
    expect_err(
        r#"
fn k(out: &uniq gpu.global [f64; 64]) -[grid: gpu.grid<X<1>, X<64>>]-> () {
    sched(X) block in grid {
        to_warps wb in block {
            sched(X) warp in wb {
                split(X) warp at 16 {
                    lo => {
                        sched(X) lane in lo {
                            let mut v = 1.0;
                            v = v + shfl_down(v, 8);
                        }
                    },
                    hi => { }
                }
            }
        }
    }
}
"#,
        ErrorKind::ShuffleError,
    );
}

/// Shuffles only execute at lane level — not per-warp or per-block.
#[test]
fn shuffle_above_lane_level_rejected() {
    expect_err(
        r#"
fn k(out: &uniq gpu.global [f64; 64]) -[grid: gpu.grid<X<1>, X<64>>]-> () {
    sched(X) block in grid {
        to_warps wb in block {
            sched(X) warp in wb {
                let mut v = 1.0;
                v = v + shfl_down(v, 8);
            }
        }
    }
}
"#,
        ErrorKind::ShuffleError,
    );
}

#[test]
fn shuffle_on_cpu_rejected() {
    expect_err(
        r#"
fn k(out: &uniq gpu.global [f64; 64]) -[grid: gpu.grid<X<1>, X<64>>]-> () {
    sched(X) block in grid {
        sched(X) thread in block {
            (*out).group::<64>[[block]][[thread]] = 0.0;
        }
    }
}
fn main() -[t: cpu.thread]-> () {
    let mut x = 1.0;
    x = x + shfl_down(x, 1);
}
"#,
        ErrorKind::WrongExecutionContext,
    );
}

/// `to_warps` needs a 1-D `X` thread space whose extent is a multiple of
/// the warp size.
#[test]
fn to_warps_on_unaligned_block_rejected() {
    expect_err(
        r#"
fn k(out: &uniq gpu.global [f64; 48]) -[grid: gpu.grid<X<1>, X<48>>]-> () {
    sched(X) block in grid {
        to_warps wb in block {
        }
    }
}
"#,
        ErrorKind::ScheduleError,
    );
}

#[test]
fn to_warps_on_2d_block_rejected() {
    expect_err(
        r#"
fn k(out: &uniq gpu.global [f64; 64]) -[grid: gpu.grid<X<1>, XY<32,8>>]-> () {
    sched(X) block in grid {
        to_warps wb in block {
        }
    }
}
"#,
        ErrorKind::ScheduleError,
    );
}

/// `to_warps` must name the current resource (like `sched`/`split`).
#[test]
fn to_warps_of_foreign_resource_rejected() {
    expect_err(
        r#"
fn k(out: &uniq gpu.global [f64; 64]) -[grid: gpu.grid<X<1>, X<64>>]-> () {
    sched(X) block in grid {
        sched(X) thread in block {
            to_warps wb in block {
            }
        }
    }
}
"#,
        ErrorKind::ScheduleError,
    );
}

/// Narrowing counts warp and lane levels: a write distributed only over
/// lanes leaves the warp level uncovered.
#[test]
fn warp_level_narrowing_enforced() {
    expect_err(
        r#"
fn k(out: &uniq gpu.global [f64; 32]) -[grid: gpu.grid<X<1>, X<64>>]-> () {
    sched(X) block in grid {
        to_warps wb in block {
            sched(X) warp in wb {
                sched(X) lane in warp {
                    (*out)[[lane]] = 1.0;
                }
            }
        }
    }
}
"#,
        ErrorKind::NarrowingViolation,
    );
}

/// A `sync` directly under `to_warps` is still reached by every thread
/// of the block — legal. Under a warp-space split it is not.
#[test]
fn sync_legality_under_warps() {
    check(
        r#"
fn k(out: &uniq gpu.global [f64; 64]) -[grid: gpu.grid<X<1>, X<64>>]-> () {
    sched(X) block in grid {
        to_warps wb in block {
            sync;
        }
    }
}
"#,
    )
    .expect("whole-block sync under to_warps is legal");
    expect_err(
        r#"
fn k(out: &uniq gpu.global [f64; 64]) -[grid: gpu.grid<X<1>, X<64>>]-> () {
    sched(X) block in grid {
        to_warps wb in block {
            split(X) wb at 1 {
                first => { sync; },
                rest => { }
            }
        }
    }
}
"#,
        ErrorKind::BarrierNotAllowed,
    );
}

/// The warp-split epilogue shape the shuffle reduction uses: only the
/// first warp runs, its lanes select their own slots, no conflicts.
#[test]
fn single_warp_epilogue_typechecks() {
    check(
        r#"
fn k(out: &uniq gpu.global [f64; 32]) -[grid: gpu.grid<X<1>, X<64>>]-> () {
    sched(X) block in grid {
        to_warps wb in block {
            split(X) wb at 1 {
                w0 => {
                    sched(X) warp in w0 {
                        sched(X) lane in warp {
                            let mut v = 2.0;
                            v = v + shfl_down(v, 16);
                            (*out)[[lane]] = v;
                        }
                    }
                },
                others => { }
            }
        }
    }
}
"#,
    )
    .expect("single-warp epilogue is safe");
}

/// Shuffling a boolean is a type error (shuffles exchange numbers).
#[test]
fn shuffle_of_bool_rejected() {
    expect_err(
        r#"
fn k(out: &uniq gpu.global [f64; 64]) -[grid: gpu.grid<X<1>, X<64>>]-> () {
    sched(X) block in grid {
        to_warps wb in block {
            sched(X) warp in wb {
                sched(X) lane in warp {
                    let b = true;
                    let c = shfl_down(b, 1);
                }
            }
        }
    }
}
"#,
        ErrorKind::MismatchedTypes,
    );
}

/// Two lanes writing through the same select chain never conflict; the
/// same chain *without* the lane select read back by a neighbouring
/// lane does (the memory twin of what a shuffle does safely).
#[test]
fn cross_lane_memory_exchange_conflicts() {
    expect_err(
        r#"
fn k(out: &uniq gpu.global [f64; 64]) -[grid: gpu.grid<X<1>, X<64>>]-> () {
    sched(X) block in grid {
        let tmp = alloc::<gpu.shared, [f64; 64]>();
        to_warps wb in block {
            sched(X) warp in wb {
                sched(X) lane in warp {
                    tmp.group::<32>[[warp]][[lane]] =
                        tmp.group::<32>[[warp]].rev[[lane]];
                }
            }
        }
    }
}
"#,
        ErrorKind::ConflictingAccess,
    );
}
