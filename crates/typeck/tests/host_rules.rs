//! Host-side (CPU) rules: moves, borrows, scopes, and the memory API —
//! the plain-Rust layer of the paper's type system ("On the CPU, Descend
//! implements exactly the same rules as Rust").

use descend_typeck::{check_program, ErrorKind};

fn check(src: &str) -> Result<descend_typeck::CheckedProgram, descend_typeck::TypeError> {
    let prog = descend_parser::parse(src).expect("test sources parse");
    check_program(&prog)
}

fn expect_err(src: &str, kind: ErrorKind) {
    match check(src) {
        Ok(_) => panic!("expected {kind:?}, but the program type-checked"),
        Err(e) => assert_eq!(e.kind, kind, "wrong error: {e}"),
    }
}

#[test]
fn two_unique_borrows_conflict() {
    expect_err(
        r#"
fn main() -[t: cpu.thread]-> () {
    let h = alloc::<cpu.mem, [f64; 16]>();
    let r1 = &uniq h;
    let r2 = &uniq h;
}
"#,
        ErrorKind::BorrowConflict,
    );
}

#[test]
fn shared_then_unique_borrow_conflicts() {
    expect_err(
        r#"
fn main() -[t: cpu.thread]-> () {
    let h = alloc::<cpu.mem, [f64; 16]>();
    let r1 = &h;
    let r2 = &uniq h;
}
"#,
        ErrorKind::BorrowConflict,
    );
}

#[test]
fn two_shared_borrows_are_fine() {
    check(
        r#"
fn main() -[t: cpu.thread]-> () {
    let h = alloc::<cpu.mem, [f64; 16]>();
    let r1 = &h;
    let r2 = &h;
}
"#,
    )
    .expect("shared aliasing is allowed");
}

#[test]
fn borrow_dies_at_scope_exit() {
    check(
        r#"
fn main() -[t: cpu.thread]-> () {
    let h = alloc::<cpu.mem, [f64; 16]>();
    {
        let r1 = &uniq h;
    }
    let r2 = &uniq h;
}
"#,
    )
    .expect("the first borrow is released at scope exit");
}

#[test]
fn using_buffer_while_uniquely_borrowed_conflicts() {
    expect_err(
        r#"
fn main() -[t: cpu.thread]-> () {
    let h = alloc::<cpu.mem, [f64; 16]>();
    let r = &uniq h;
    let d = gpu_alloc_copy(&h);
}
"#,
        ErrorKind::BorrowConflict,
    );
}

#[test]
fn move_then_borrow_is_rejected() {
    expect_err(
        r#"
fn main() -[t: cpu.thread]-> () {
    let h = alloc::<cpu.mem, [f64; 16]>();
    let h2 = h;
    let r = &h;
}
"#,
        ErrorKind::MovedValue,
    );
}

#[test]
fn moved_value_usable_through_new_name() {
    check(
        r#"
fn main() -[t: cpu.thread]-> () {
    let h = alloc::<cpu.mem, [f64; 16]>();
    let h2 = h;
    let d = gpu_alloc_copy(&h2);
}
"#,
    )
    .expect("ownership transferred to h2");
}

#[test]
fn gpu_alloc_copy_requires_cpu_source() {
    expect_err(
        r#"
fn main() -[t: cpu.thread]-> () {
    let d1 = alloc::<gpu.global, [f64; 16]>();
    let d2 = gpu_alloc_copy(&d1);
}
"#,
        ErrorKind::MismatchedTypes,
    );
}

#[test]
fn copy_requires_unique_destination() {
    expect_err(
        r#"
fn main() -[t: cpu.thread]-> () {
    let h = alloc::<cpu.mem, [f64; 16]>();
    let d = gpu_alloc_copy(&h);
    copy_mem_to_host(&h, &d);
}
"#,
        ErrorKind::NotWritable,
    );
}

#[test]
fn copy_size_mismatch_rejected() {
    expect_err(
        r#"
fn main() -[t: cpu.thread]-> () {
    let h = alloc::<cpu.mem, [f64; 16]>();
    let big = alloc::<cpu.mem, [f64; 32]>();
    let d = gpu_alloc_copy(&h);
    copy_mem_to_host(&uniq big, &d);
}
"#,
        ErrorKind::MismatchedTypes,
    );
}

#[test]
fn sync_on_cpu_rejected() {
    expect_err(
        r#"
fn main() -[t: cpu.thread]-> () {
    sync;
}
"#,
        ErrorKind::WrongExecutionContext,
    );
}

#[test]
fn sched_on_cpu_rejected() {
    expect_err(
        r#"
fn main() -[t: cpu.thread]-> () {
    sched(X) x in t { }
}
"#,
        ErrorKind::ScheduleError,
    );
}

#[test]
fn shared_alloc_on_cpu_rejected() {
    expect_err(
        r#"
fn main() -[t: cpu.thread]-> () {
    let s = alloc::<gpu.shared, [f64; 16]>();
}
"#,
        ErrorKind::WrongExecutionContext,
    );
}

#[test]
fn gpu_global_alloc_on_gpu_rejected() {
    expect_err(
        r#"
fn k(v: &uniq gpu.global [f64; 32]) -[grid: gpu.grid<X<1>, X<32>>]-> () {
    sched(X) block in grid {
        let d = alloc::<gpu.global, [f64; 32]>();
    }
}
"#,
        ErrorKind::WrongExecutionContext,
    );
}

#[test]
fn intrinsics_cannot_run_on_gpu() {
    expect_err(
        r#"
fn k(v: &uniq gpu.global [f64; 32]) -[grid: gpu.grid<X<1>, X<32>>]-> () {
    sched(X) block in grid {
        copy_mem_to_host(&uniq v, &v);
    }
}
"#,
        ErrorKind::WrongExecutionContext,
    );
}

#[test]
fn launch_from_gpu_rejected() {
    expect_err(
        r#"
fn other(v: &uniq gpu.global [f64; 32]) -[grid: gpu.grid<X<1>, X<32>>]-> () {
}

fn k(v: &uniq gpu.global [f64; 32]) -[grid: gpu.grid<X<1>, X<32>>]-> () {
    sched(X) block in grid {
        other<<<X<1>, X<32>>>>(&uniq v);
    }
}
"#,
        ErrorKind::WrongExecutionContext,
    );
}

#[test]
fn deref_gpu_buffer_on_host_rejected() {
    expect_err(
        r#"
fn main() -[t: cpu.thread]-> () {
    let h = alloc::<cpu.mem, [f64; 16]>();
    let d = gpu_alloc_copy(&h);
    let r = &d;
    let x = (*r)[0];
}
"#,
        ErrorKind::WrongExecutionContext,
    );
}

#[test]
fn host_scalar_locals_and_reads() {
    check(
        r#"
fn main() -[t: cpu.thread]-> () {
    let h = alloc::<cpu.mem, [f64; 16]>();
    let x = h[0];
    let mut y = x + 1.0;
    y = y * 2.0;
}
"#,
    )
    .expect("host scalar computation is allowed");
}

#[test]
fn assignment_to_immutable_host_local_rejected() {
    expect_err(
        r#"
fn main() -[t: cpu.thread]-> () {
    let x = 1.0;
    x = 2.0;
}
"#,
        ErrorKind::NotWritable,
    );
}

#[test]
fn unknown_call_rejected() {
    expect_err(
        r#"
fn main() -[t: cpu.thread]-> () {
    frobnicate();
}
"#,
        ErrorKind::UnknownName,
    );
}
