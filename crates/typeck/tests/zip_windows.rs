//! The accept/reject boundary of the zip and strided-window views:
//! projections route zips to per-component places, overlapping windows
//! may be read but never written, and the nat constraints (zip length
//! equality, windows extent arithmetic) are decided statically.

use descend_typeck::{check_program, ErrorKind};

fn check(src: &str) -> Result<descend_typeck::CheckedProgram, descend_typeck::TypeError> {
    let prog = descend_parser::parse(src).expect("test sources parse");
    check_program(&prog)
}

fn expect_err(src: &str, kind: ErrorKind) {
    match check(src) {
        Ok(_) => panic!("expected {kind:?}, but the program type-checked"),
        Err(e) => assert_eq!(e.kind, kind, "wrong error: {e}"),
    }
}

/// The basic zip: projections of a fully-selected zip element route to
/// the two base buffers; the program is accepted and both components'
/// accesses are recorded independently.
#[test]
fn zip_projections_route_to_components() {
    check(
        r#"
fn k(a: & gpu.global [f64; 64], b: & gpu.global [f64; 64],
     out: &uniq gpu.global [f64; 64]) -[grid: gpu.grid<X<2>, X<32>>]-> () {
    sched(X) block in grid {
        sched(X) thread in block {
            (*out).group::<32>[[block]][[thread]] =
                zip((*a), (*b)).group::<32>[[block]][[thread]].0
                * zip((*a), (*b)).group::<32>[[block]][[thread]].1;
        }
    }
}
"#,
    )
    .expect("zip reads route to their own buffers");
}

/// A *write* through a zip projection is a write to the routed
/// component: writing `.0` of zip(out, inp) narrows like a direct write
/// to `out` — accepted when fully selected.
#[test]
fn zip_projection_write_is_a_component_write() {
    check(
        r#"
fn k(inp: & gpu.global [f64; 64], out: &uniq gpu.global [f64; 64])
-[grid: gpu.grid<X<2>, X<32>>]-> () {
    sched(X) block in grid {
        sched(X) thread in block {
            zip((*out), (*inp)).group::<32>[[block]][[thread]].0 =
                zip((*out), (*inp)).group::<32>[[block]][[thread]].1;
        }
    }
}
"#,
    )
    .expect("a routed zip write is a plain component write");
}

/// The routed component write still conflicts with a direct access to
/// the same buffer: routing erases the zip, so the conflict analysis
/// compares the real paths.
#[test]
fn routed_zip_write_conflicts_with_direct_read() {
    expect_err(
        r#"
fn k(inp: & gpu.global [f64; 64], out: &uniq gpu.global [f64; 64])
-[grid: gpu.grid<X<2>, X<32>>]-> () {
    sched(X) block in grid {
        sched(X) thread in block {
            zip((*out), (*inp)).group::<32>[[block]][[thread]].0 =
                (*out).group::<32>[[block]].rev[[thread]];
        }
    }
}
"#,
        ErrorKind::ConflictingAccess,
    );
}

/// A write through an *unnarrowed* zip projection is still a narrowing
/// violation: routing does not bypass the access checks.
#[test]
fn unnarrowed_zip_write_violates_narrowing() {
    expect_err(
        r#"
fn k(inp: & gpu.global [f64; 64], out: &uniq gpu.global [f64; 64])
-[grid: gpu.grid<X<2>, X<32>>]-> () {
    sched(X) block in grid {
        sched(X) thread in block {
            zip((*out), (*inp))[0].0 = 1.0;
        }
    }
}
"#,
        ErrorKind::NarrowingViolation,
    );
}

/// An unprojected zip element cannot be accessed: the pair's halves
/// live in different buffers.
#[test]
fn unprojected_zip_access_rejected() {
    expect_err(
        r#"
fn k(a: & gpu.global [f64; 64], b: & gpu.global [f64; 64])
-[grid: gpu.grid<X<2>, X<32>>]-> () {
    sched(X) block in grid {
        sched(X) thread in block {
            let p = zip((*a), (*b)).group::<32>[[block]][[thread]];
        }
    }
}
"#,
        ErrorKind::ViewMisapplied,
    );
}

/// Zip length equality is a nat constraint; a mismatch is rejected.
#[test]
fn zip_length_mismatch_rejected() {
    expect_err(
        r#"
fn k(a: & gpu.global [f64; 64], b: & gpu.global [f64; 32],
     out: &uniq gpu.global [f64; 64]) -[grid: gpu.grid<X<2>, X<32>>]-> () {
    sched(X) block in grid {
        sched(X) thread in block {
            (*out).group::<32>[[block]][[thread]] =
                zip((*a), (*b)).group::<32>[[block]][[thread]].0;
        }
    }
}
"#,
        ErrorKind::ViewMisapplied,
    );
}

/// Zips nest: projecting twice routes through both levels.
#[test]
fn nested_zip_routes_twice() {
    check(
        r#"
fn k(a: & gpu.global [f64; 32], b: & gpu.global [f64; 32],
     c: & gpu.global [f64; 32], out: &uniq gpu.global [f64; 32])
-[grid: gpu.grid<X<1>, X<32>>]-> () {
    sched(X) block in grid {
        sched(X) thread in block {
            (*out)[[thread]] =
                zip(zip((*a), (*b)), (*c))[[thread]].0.1
                + zip(zip((*a), (*b)), (*c))[[thread]].1;
        }
    }
}
"#,
    )
    .expect("nested zip projections route to the innermost component");
}

/// Reading through overlapping windows (stride < width) is fine: reads
/// replicate freely even when sibling threads' windows share elements.
#[test]
fn overlapping_window_reads_accepted() {
    check(
        r#"
fn k(inp: & gpu.global [f64; 34], out: &uniq gpu.global [f64; 32])
-[grid: gpu.grid<X<1>, X<32>>]-> () {
    sched(X) block in grid {
        sched(X) thread in block {
            (*out)[[thread]] = (*inp).windows::<3, 1>[[thread]][0]
                + (*inp).windows::<3, 1>[[thread]][1]
                + (*inp).windows::<3, 1>[[thread]][2];
        }
    }
}
"#,
    )
    .expect("overlapping window reads are race-free");
}

/// Any write through an overlapping window conflicts: thread t's window
/// shares elements with thread t+1's.
#[test]
fn overlapping_window_write_rejected() {
    expect_err(
        r#"
fn k(buf: &uniq gpu.global [f64; 34]) -[grid: gpu.grid<X<1>, X<32>>]-> () {
    sched(X) block in grid {
        sched(X) thread in block {
            (*buf).windows::<3, 1>[[thread]][1] =
                (*buf).windows::<3, 1>[[thread]][0];
        }
    }
}
"#,
        ErrorKind::ConflictingAccess,
    );
}

/// The overlap rule reaches through `map`: wrapping the overlapping
/// window in `map(...)` must not un-reject the in-place stencil.
#[test]
fn mapped_overlapping_window_write_rejected() {
    expect_err(
        r#"
fn smear(buf: &uniq gpu.global [[f64; 34]; 4])
-[grid: gpu.grid<X<4>, X<32>>]-> () {
    sched(X) block in grid {
        sched(X) thread in block {
            (*buf).map(windows::<3, 1>)[[block]][[thread]][1] =
                (*buf).map(windows::<3, 1>)[[block]][[thread]][0]
                + (*buf).map(windows::<3, 1>)[[block]][[thread]][2];
        }
    }
}
"#,
        ErrorKind::ConflictingAccess,
    );
}

/// Windows with stride == width tile the array like `group`: writes are
/// accepted when fully selected.
#[test]
fn tiling_window_write_accepted() {
    check(
        r#"
fn k(buf: &uniq gpu.global [f64; 64]) -[grid: gpu.grid<X<1>, X<32>>]-> () {
    sched(X) block in grid {
        sched(X) thread in block {
            (*buf).windows::<2, 2>[[thread]][0] = 1.0;
            (*buf).windows::<2, 2>[[thread]][1] = 2.0;
        }
    }
}
"#,
    )
    .expect("non-overlapping windows partition the array");
}

/// The windows extent arithmetic is checked: a width that does not fit
/// or a ragged stride is a misapplied view.
#[test]
fn windows_misfit_rejected() {
    expect_err(
        r#"
fn k(buf: &uniq gpu.global [f64; 33]) -[grid: gpu.grid<X<1>, X<32>>]-> () {
    sched(X) block in grid {
        sched(X) thread in block {
            (*buf).windows::<4, 2>[[thread]][0] = 1.0;
        }
    }
}
"#,
        ErrorKind::ViewMisapplied,
    );
}

/// Windows compose with zip: a windows view over a zip mirrors into
/// both components, and projections still route.
#[test]
fn windows_over_zip_composes() {
    check(
        r#"
fn k(a: & gpu.global [f64; 34], b: & gpu.global [f64; 34],
     out: &uniq gpu.global [f64; 32]) -[grid: gpu.grid<X<1>, X<32>>]-> () {
    sched(X) block in grid {
        sched(X) thread in block {
            (*out)[[thread]] =
                zip((*a), (*b)).windows::<3, 1>[[thread]][0].0
                + zip((*a), (*b)).windows::<3, 1>[[thread]][2].1;
        }
    }
}
"#,
    )
    .expect("windows over zip mirrors into both components");
}

/// The select-extent check applies to the windows dimension: 32 threads
/// cannot select from 16 windows.
#[test]
fn windows_select_extent_checked() {
    expect_err(
        r#"
fn k(inp: & gpu.global [f64; 34], out: &uniq gpu.global [f64; 32])
-[grid: gpu.grid<X<1>, X<32>>]-> () {
    sched(X) block in grid {
        sched(X) thread in block {
            (*out)[[thread]] = (*inp).windows::<4, 2>[[thread]][0];
        }
    }
}
"#,
        ErrorKind::SelectSizeMismatch,
    );
}
