//! The paper's Section 2 and 3 examples as a compile-pass/compile-fail
//! corpus. Each test corresponds to a concrete listing or error message
//! from *Descend: A Safe GPU Systems Programming Language*.

use descend_typeck::{check_program, ElabStmt, ErrorKind};

fn check(src: &str) -> Result<descend_typeck::CheckedProgram, descend_typeck::TypeError> {
    let prog = descend_parser::parse(src).expect("test sources parse");
    check_program(&prog)
}

/// Statement count net of `ElabStmt::Src` source markers, which the
/// elaborator interleaves for trace attribution and which are not part
/// of the listings' shape.
fn stmt_count(body: &[ElabStmt]) -> usize {
    body.iter()
        .filter(|s| !matches!(s, ElabStmt::Src(_)))
        .count()
}

fn expect_err(src: &str, kind: ErrorKind) {
    match check(src) {
        Ok(_) => panic!("expected {kind:?}, but the program type-checked"),
        Err(e) => assert_eq!(e.kind, kind, "wrong error: {e}"),
    }
}

/// A minimal kernel in the style of the paper's `scale_vec`.
#[test]
fn scale_vec_compiles() {
    let out = check(
        r#"
fn scale_vec(v: &uniq gpu.global [f64; 1024]) -[grid: gpu.grid<X<32>, X<32>>]-> () {
    sched(X) block in grid {
        sched(X) thread in block {
            (*v).group::<32>[[block]][[thread]] =
                (*v).group::<32>[[block]][[thread]] * 3.0;
        }
    }
}
"#,
    )
    .expect("scale_vec is safe");
    assert_eq!(out.kernels.len(), 1);
    let k = &out.kernels[0];
    assert_eq!(k.grid_dim, [32, 1, 1]);
    assert_eq!(k.block_dim, [32, 1, 1]);
    assert_eq!(k.params.len(), 1);
    assert_eq!(stmt_count(&k.body), 1);
}

/// Listing 2: the matrix transposition written with views, adapted to the
/// per-dimension select dialect documented in DESIGN.md.
#[test]
fn listing_2_transpose_compiles() {
    let out = check(TRANSPOSE_SRC).expect("the transpose of Listing 2 is safe");
    let k = &out.kernels[0];
    assert_eq!(k.shared.len(), 1);
    assert_eq!(k.shared[0].dims, vec![32, 32]);
    // 4 unrolled copies in, sync, 4 unrolled copies out.
    assert_eq!(stmt_count(&k.body), 9);
}

const TRANSPOSE_SRC: &str = r#"
view tiles<h: nat, w: nat> = group::<h>.map(map(group::<w>)).map(transpose);

fn transpose(input: & gpu.global [[f64; 256]; 256],
             output: &uniq gpu.global [[f64; 256]; 256])
-[grid: gpu.grid<XY<8,8>, XY<32,8>>]-> () {
    sched(Y,X) block in grid {
        let tmp = alloc::<gpu.shared, [[f64; 32]; 32]>();
        sched(Y,X) thread in block {
            for i in [0..4] {
                tmp.group::<8>[i][[thread]] =
                    (*input).tiles::<32,32>.transpose[[block]].group::<8>[i][[thread]];
            }
            sync;
            for i in [0..4] {
                (*output).tiles::<32,32>[[block]].group::<8>[i][[thread]] =
                    tmp.transpose.group::<8>[i][[thread]];
            }
        }
    }
}
"#;

/// Section 2.2: `rev_per_block` — "conflicting memory access".
#[test]
fn rev_per_block_race_rejected() {
    expect_err(
        r#"
fn rev_per_block(arr: &uniq gpu.global [f64; 2048])
-[grid: gpu.grid<X<8>, X<256>>]-> () {
    sched(X) block in grid {
        sched(X) thread in block {
            (*arr).group::<256>[[block]][[thread]] =
                (*arr).group::<256>[[block]].rev[[thread]];
        }
    }
}
"#,
        ErrorKind::ConflictingAccess,
    );
}

/// The same pattern through shared memory is fine with a barrier.
#[test]
fn reverse_with_barrier_compiles() {
    check(
        r#"
fn rev_per_block(arr: &uniq gpu.global [f64; 2048])
-[grid: gpu.grid<X<8>, X<256>>]-> () {
    sched(X) block in grid {
        let tmp = alloc::<gpu.shared, [f64; 256]>();
        sched(X) thread in block {
            tmp[[thread]] = (*arr).group::<256>[[block]].rev[[thread]];
        }
        sync;
        sched(X) thread in block {
            (*arr).group::<256>[[block]][[thread]] = tmp[[thread]];
        }
    }
}
"#,
    )
    .expect("barrier separates the reversed read from the write");
}

/// Section 2.2: "barrier not allowed here" — sync under a split.
#[test]
fn sync_under_split_rejected() {
    expect_err(
        r#"
fn kernel(a: &uniq gpu.global [f64; 64]) -[grid: gpu.grid<X<1>, X<64>>]-> () {
    sched(X) block in grid {
        split(X) block at 32 {
            first_32_threads => { sync; },
            rest => { }
        }
    }
}
"#,
        ErrorKind::BarrierNotAllowed,
    );
}

/// A sync after the split rejoins is legal.
#[test]
fn sync_after_split_compiles() {
    check(
        r#"
fn kernel(a: &uniq gpu.global [f64; 64]) -[grid: gpu.grid<X<1>, X<64>>]-> () {
    sched(X) block in grid {
        let tmp = alloc::<gpu.shared, [f64; 64]>();
        split(X) block at 32 {
            low => {
                sched(X) t in low { tmp.split::<32>.fst[[t]] = 1.0; }
            },
            high => {
                sched(X) t in high { tmp.split::<32>.snd[[t]] = 2.0; }
            }
        }
        sync;
        sched(X) thread in block {
            (*a)[[thread]] = tmp[[thread]];
        }
    }
}
"#,
    )
    .expect("split halves write disjoint regions; sync rejoins");
}

/// Section 3.3, line 4: `&uniq *arr` after scheduling blocks violates
/// narrowing.
#[test]
fn narrowing_block_borrow_rejected() {
    expect_err(
        r#"
fn kernel(arr: &uniq gpu.global [f32; 1024]) -[grd: gpu.Grid<X<32>, X<32>>]-> () {
    sched(X) block in grd {
        let in_borrow = &uniq *arr;
    }
}
"#,
        ErrorKind::NarrowingViolation,
    );
}

/// Section 3.3, line 6: selecting for the thread without having selected
/// for the block violates narrowing.
#[test]
fn narrowing_missing_block_select_rejected() {
    expect_err(
        r#"
fn kernel(arr: &uniq gpu.global [f32; 1024]) -[grd: gpu.Grid<X<32>, X<32>>]-> () {
    sched(X) block in grd {
        sched(X) thread in block {
            let grp = &uniq (*arr).group::<32>[[thread]];
        }
    }
}
"#,
        ErrorKind::NarrowingViolation,
    );
}

/// Section 3.3, line 8: correct narrowing.
#[test]
fn narrowing_correct_selects_compile() {
    check(
        r#"
fn kernel(arr: &uniq gpu.global [f32; 1024]) -[grd: gpu.Grid<X<32>, X<32>>]-> () {
    sched(X) block in grd {
        sched(X) thread in block {
            let x = &uniq (*arr).group::<32>[[block]][[thread]];
        }
    }
}
"#,
    )
    .expect("grouped, block- and thread-selected access is narrowed");
}

/// Section 2.3: swapped `copy_mem_to_host` arguments are a type error.
#[test]
fn swapped_memcpy_rejected() {
    expect_err(
        r#"
fn main() -[t: cpu.thread]-> () {
    let h_vec = alloc::<cpu.mem, [f64; 64]>();
    let d_vec = gpu_alloc_copy(&h_vec);
    copy_mem_to_host(&uniq d_vec, &h_vec);
}
"#,
        ErrorKind::MismatchedTypes,
    );
}

/// The correct transfer direction compiles and elaborates.
#[test]
fn host_pipeline_compiles() {
    let out = check(
        r#"
fn scale(v: &uniq gpu.global [f64; 64]) -[grid: gpu.grid<X<2>, X<32>>]-> () {
    sched(X) block in grid {
        sched(X) thread in block {
            (*v).group::<32>[[block]][[thread]] =
                (*v).group::<32>[[block]][[thread]] * 2.0;
        }
    }
}

fn main() -[t: cpu.thread]-> () {
    let h = alloc::<cpu.mem, [f64; 64]>();
    let d = gpu_alloc_copy(&h);
    scale<<<X<2>, X<32>>>>(&uniq d);
    copy_mem_to_host(&uniq h, &d);
}
"#,
    )
    .expect("the host pipeline is well-typed");
    let host = out.host_fn("main").expect("main is a host fn");
    assert_eq!(host.len(), 4);
    use descend_typeck::HostStmt;
    assert!(matches!(host[0], HostStmt::AllocCpu { .. }));
    assert!(matches!(host[1], HostStmt::AllocGpuCopy { .. }));
    assert!(matches!(host[2], HostStmt::Launch { .. }));
    assert!(matches!(host[3], HostStmt::CopyToHost { .. }));
}

/// Section 2.3: dereferencing a `cpu.mem` pointer on the GPU.
#[test]
fn cpu_deref_on_gpu_rejected() {
    expect_err(
        r#"
fn init_kernel(vec: & cpu.mem [f64; 64]) -[grid: gpu.grid<X<1>, X<64>>]-> () {
    sched(X) block in grid {
        sched(X) thread in block {
            let x = (*vec)[[thread]];
        }
    }
}
"#,
        ErrorKind::WrongExecutionContext,
    );
}

/// Section 2.3: launching with the wrong number of threads is a type
/// error (the paper's `[f64; SIZE]` vs `[f64; ELEMS]`).
#[test]
fn launch_wrong_size_rejected() {
    expect_err(
        r#"
const ELEMS: nat = 64;
const SIZE: nat = 512;

fn scale_vec<n: nat>(vec: &uniq gpu.global [f64; n])
-[grid: gpu.grid<X<1>, X<n>>]-> () {
    sched(X) block in grid {
        sched(X) thread in block {
            (*vec)[[thread]] = (*vec)[[thread]] * 3.0;
        }
    }
}

fn main() -[t: cpu.thread]-> () {
    let h = alloc::<cpu.mem, [f64; ELEMS]>();
    let d = gpu_alloc_copy(&h);
    scale_vec::<SIZE><<<X<1>, X<SIZE>>>>(&uniq d);
}
"#,
        ErrorKind::MismatchedTypes,
    );
}

/// Launching with a grid shape different from the annotation.
#[test]
fn launch_wrong_grid_rejected() {
    expect_err(
        r#"
fn k(v: &uniq gpu.global [f64; 64]) -[grid: gpu.grid<X<2>, X<32>>]-> () {
    sched(X) block in grid {
        sched(X) thread in block {
            (*v).group::<32>[[block]][[thread]] = 0.0;
        }
    }
}

fn main() -[t: cpu.thread]-> () {
    let h = alloc::<cpu.mem, [f64; 64]>();
    let d = gpu_alloc_copy(&h);
    k<<<X<1>, X<64>>>>(&uniq d);
}
"#,
        ErrorKind::LaunchConfigMismatch,
    );
}

/// The block-wide tree reduction (the paper's first benchmark).
#[test]
fn reduction_compiles() {
    let out = check(
        r#"
fn reduce(inp: & gpu.global [f64; 2048], out: &uniq gpu.global [f64; 4])
-[grid: gpu.grid<X<4>, X<512>>]-> () {
    sched(X) block in grid {
        let tmp = alloc::<gpu.shared, [f64; 512]>();
        sched(X) thread in block {
            tmp[[thread]] = (*inp).group::<512>[[block]][[thread]];
        }
        sync;
        for k in halving(256) {
            split(X) block at k {
                active => {
                    sched(X) t in active {
                        tmp.split::<k>.fst[[t]] = tmp.split::<k>.fst[[t]]
                            + tmp.split::<k>.snd.split::<k>.fst[[t]];
                    }
                },
                inactive => { }
            }
            sync;
        }
        split(X) block at 1 {
            first => {
                sched(X) t in first {
                    (*out)[[block]] = tmp.split::<1>.fst[[t]];
                }
            },
            rest => { }
        }
    }
}
"#,
    )
    .expect("tree reduction is safe");
    let k = &out.kernels[0];
    // load + sync + 9 halving steps (split + sync) + final split.
    assert_eq!(stmt_count(&k.body), 1 + 1 + 18 + 1);
}

/// Tiled matrix multiplication (the paper's MM benchmark).
#[test]
fn matmul_compiles() {
    check(
        r#"
view tiles<h: nat, w: nat> = group::<h>.map(map(group::<w>)).map(transpose);

fn matmul(a: & gpu.global [[f64; 128]; 128], b: & gpu.global [[f64; 128]; 128],
          c: &uniq gpu.global [[f64; 128]; 128])
-[grid: gpu.grid<XY<4,4>, XY<32,32>>]-> () {
    sched(Y,X) block in grid {
        let a_tile = alloc::<gpu.shared, [[f64; 32]; 32]>();
        let b_tile = alloc::<gpu.shared, [[f64; 32]; 32]>();
        sched(Y,X) thread in block {
            let mut acc = 0.0;
            for t in [0..4] {
                a_tile[[thread]] = (*a).tiles::<32,32>[[block.Y]][t][[thread]];
                b_tile[[thread]] = (*b).tiles::<32,32>[t][[block.X]][[thread]];
                sync;
                for k in [0..32] {
                    acc = acc + a_tile[[thread.Y]][k] * b_tile[k][[thread.X]];
                }
                sync;
            }
            (*c).tiles::<32,32>[[block]][[thread]] = acc;
        }
    }
}
"#,
    )
    .expect("tiled matmul is safe");
}

/// Forgetting the barrier in the transpose makes the borrow checker
/// reject the program ("synchronizations are not forgotten").
#[test]
fn transpose_without_sync_rejected() {
    let src = TRANSPOSE_SRC.replace("sync;", "");
    expect_err(&src, ErrorKind::ConflictingAccess);
}

/// Select extent must match the array size.
#[test]
fn select_size_mismatch_rejected() {
    expect_err(
        r#"
fn k(v: &uniq gpu.global [f64; 100]) -[grid: gpu.grid<X<1>, X<64>>]-> () {
    sched(X) block in grid {
        sched(X) thread in block {
            (*v)[[thread]] = 0.0;
        }
    }
}
"#,
        ErrorKind::SelectSizeMismatch,
    );
}

/// Scheduling over a dimension the grid does not declare.
#[test]
fn sched_missing_dim_rejected() {
    expect_err(
        r#"
fn k(v: &uniq gpu.global [f64; 64]) -[grid: gpu.grid<X<1>, X<64>>]-> () {
    sched(Y) block in grid { }
}
"#,
        ErrorKind::ScheduleError,
    );
}

/// Where clauses are checked at instantiation.
#[test]
fn where_clause_violation_rejected() {
    expect_err(
        r#"
fn red<n: nat, nb: nat>(a: &uniq gpu.global [f64; n])
-[grid: gpu.grid<X<nb>, X<512>>]-> () where n == nb * 512 {
}

fn main() -[t: cpu.thread]-> () {
    let h = alloc::<cpu.mem, [f64; 100]>();
    let d = gpu_alloc_copy(&h);
    red::<100, 2><<<X<2>, X<512>>>>(&uniq d);
}
"#,
        ErrorKind::WhereClauseViolated,
    );
}

/// Moved host buffers cannot be used again.
#[test]
fn moved_buffer_rejected() {
    expect_err(
        r#"
fn main() -[t: cpu.thread]-> () {
    let h = alloc::<cpu.mem, [f64; 64]>();
    let h2 = h;
    let d = gpu_alloc_copy(&h);
}
"#,
        ErrorKind::MovedValue,
    );
}

/// Shadowing is rejected to keep place roots unique.
#[test]
fn shadowing_rejected() {
    expect_err(
        r#"
fn main() -[t: cpu.thread]-> () {
    let h = alloc::<cpu.mem, [f64; 64]>();
    let h = alloc::<cpu.mem, [f64; 64]>();
}
"#,
        ErrorKind::Shadowing,
    );
}

/// Writing through a shared (non-uniq) reference is rejected.
#[test]
fn write_through_shared_ref_rejected() {
    expect_err(
        r#"
fn k(v: & gpu.global [f64; 64]) -[grid: gpu.grid<X<1>, X<64>>]-> () {
    sched(X) block in grid {
        sched(X) thread in block {
            (*v)[[thread]] = 1.0;
        }
    }
}
"#,
        ErrorKind::NotWritable,
    );
}

/// Indexing out of bounds is caught statically.
#[test]
fn out_of_bounds_index_rejected() {
    expect_err(
        r#"
fn k(v: &uniq gpu.global [f64; 64]) -[grid: gpu.grid<X<1>, X<64>>]-> () {
    sched(X) block in grid {
        let tmp = alloc::<gpu.shared, [f64; 8]>();
        sched(X) thread in block {
            let x = tmp[9];
        }
    }
}
"#,
        ErrorKind::OutOfBounds,
    );
}

/// Group with a non-dividing size is rejected (Listing 3's n % k == 0).
#[test]
fn group_divisibility_rejected() {
    expect_err(
        r#"
fn k(v: &uniq gpu.global [f64; 100]) -[grid: gpu.grid<X<1>, X<64>>]-> () {
    sched(X) block in grid {
        sched(X) thread in block {
            let x = (*v).group::<7>[0][0];
        }
    }
}
"#,
        ErrorKind::ViewMisapplied,
    );
}

/// Two kernels launched with the same instantiation are checked once but
/// both launches are recorded.
#[test]
fn kernel_instances_are_cached() {
    let out = check(
        r#"
fn k(v: &uniq gpu.global [f64; 64]) -[grid: gpu.grid<X<2>, X<32>>]-> () {
    sched(X) block in grid {
        sched(X) thread in block {
            (*v).group::<32>[[block]][[thread]] = 1.0;
        }
    }
}

fn main() -[t: cpu.thread]-> () {
    let h = alloc::<cpu.mem, [f64; 64]>();
    let d = gpu_alloc_copy(&h);
    k<<<X<2>, X<32>>>>(&uniq d);
    k<<<X<2>, X<32>>>>(&uniq d);
}
"#,
    )
    .expect("repeat launches are fine");
    assert_eq!(out.kernels.len(), 1);
    assert_eq!(out.host_fn("main").unwrap().len(), 4);
}

/// The Hillis-Steele scan step: split with shifted reads double-buffers
/// safely.
#[test]
fn scan_step_compiles() {
    check(
        r#"
fn scan_step(io: &uniq gpu.global [f64; 512])
-[grid: gpu.grid<X<1>, X<512>>]-> () {
    sched(X) block in grid {
        let buf_a = alloc::<gpu.shared, [f64; 512]>();
        let buf_b = alloc::<gpu.shared, [f64; 512]>();
        sched(X) thread in block {
            buf_a[[thread]] = (*io)[[thread]];
        }
        sync;
        split(X) block at 1 {
            low => {
                sched(X) t in low {
                    buf_b.split::<1>.fst[[t]] = buf_a.split::<1>.fst[[t]];
                }
            },
            high => {
                sched(X) t in high {
                    buf_b.split::<1>.snd[[t]] = buf_a.split::<1>.snd[[t]]
                        + buf_a.split::<511>.fst[[t]];
                }
            }
        }
        sync;
        sched(X) thread in block {
            (*io)[[thread]] = buf_b[[thread]];
        }
    }
}
"#,
    )
    .expect("one scan step is safe");
}

/// Reads alone never conflict: many threads may read the same element.
#[test]
fn replicated_reads_compile() {
    check(
        r#"
fn k(v: & gpu.global [f64; 64], o: &uniq gpu.global [f64; 64])
-[grid: gpu.grid<X<1>, X<64>>]-> () {
    sched(X) block in grid {
        sched(X) thread in block {
            (*o)[[thread]] = (*v)[0] + (*v)[[thread]];
        }
    }
}
"#,
    )
    .expect("shared reads are replicable");
}

/// An unknown kernel name in a launch.
#[test]
fn unknown_kernel_rejected() {
    expect_err(
        r#"
fn main() -[t: cpu.thread]-> () {
    let h = alloc::<cpu.mem, [f64; 64]>();
    let d = gpu_alloc_copy(&h);
    nope<<<X<1>, X<64>>>>(&uniq d);
}
"#,
        ErrorKind::UnknownName,
    );
}

/// Writing to the same element from all threads (no select) is a
/// narrowing violation even without views.
#[test]
fn unselected_write_rejected() {
    expect_err(
        r#"
fn k(v: &uniq gpu.global [f64; 64]) -[grid: gpu.grid<X<1>, X<64>>]-> () {
    sched(X) block in grid {
        sched(X) thread in block {
            (*v)[0] = 1.0;
        }
    }
}
"#,
        ErrorKind::NarrowingViolation,
    );
}

/// Both split branches writing the same half race.
#[test]
fn split_same_half_write_rejected() {
    expect_err(
        r#"
fn k(v: &uniq gpu.global [f64; 64]) -[grid: gpu.grid<X<1>, X<64>>]-> () {
    sched(X) block in grid {
        let tmp = alloc::<gpu.shared, [f64; 32]>();
        split(X) block at 32 {
            low => {
                sched(X) t in low { tmp[[t]] = 1.0; }
            },
            high => {
                sched(X) t in high { tmp[[t]] = 2.0; }
            }
        }
    }
}
"#,
        ErrorKind::ConflictingAccess,
    );
}
