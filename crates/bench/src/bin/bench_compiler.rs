//! Compiler throughput benchmark — the source of `BENCH_COMPILER.json`.
//!
//! Times the whole pass corpus (`examples/descend/*.descend`) through
//! the full pipeline (parse, typeck, IR lowering, emission for every
//! backend) in two modes:
//!
//! - **cold**: a fresh [`CompileSession`] per compile — every query
//!   misses, i.e. the historical batch-compiler cost;
//! - **warm**: one persistent session, pre-warmed with a single
//!   untimed pass — every query hits, i.e. the steady-state cost of
//!   `descendc serve` answering an unchanged program.
//!
//! Wall-clock is min-of-N per file to shrug off scheduler noise;
//! throughput is reported as programs/sec over the corpus.
//!
//! Usage:
//!   bench_compiler [--reps N] [--json PATH] [--baseline PATH]
//!
//! `--json` writes the machine-readable results (schema
//! `descend-bench-compiler/1`). `--baseline` re-reads a previously
//! committed file and exits non-zero when the corpus totals regressed
//! by more than 25% wall-clock, or when the warm/cold speedup fell
//! below the 5x the incremental engine is designed to clear — the
//! scheduled CI bench job runs with `--baseline BENCH_COMPILER.json`.

use descend_compiler::CompileSession;
use std::time::Instant;

/// Totals above this baseline wall-clock participate in the >25%
/// regression gate; smaller ones are timer noise (the warm-speedup
/// ratio below gates unconditionally — ratios are robust to machine
/// noise in a way single-digit-millisecond totals are not).
const GATE_FLOOR_MS: f64 = 20.0;
const REGRESSION_FACTOR: f64 = 1.25;
/// The warm path must stay at least this much faster than cold.
const MIN_WARM_SPEEDUP: f64 = 5.0;

struct Entry {
    file: String,
    cold_ms: f64,
    warm_ms: f64,
}

fn corpus() -> Vec<(String, String)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/descend");
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .expect("examples/descend exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "descend"))
        .collect();
    files.sort();
    files
        .into_iter()
        .map(|p| {
            let name = p.file_name().unwrap().to_string_lossy().into_owned();
            let src = std::fs::read_to_string(&p).expect("corpus file reads");
            (name, src)
        })
        .collect()
}

fn main() {
    let mut reps = 5usize;
    let mut json_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--reps" => reps = args.next().and_then(|v| v.parse().ok()).expect("--reps N"),
            "--json" => json_path = Some(args.next().expect("--json PATH")),
            "--baseline" => baseline_path = Some(args.next().expect("--baseline PATH")),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    let sources = corpus();
    assert!(!sources.is_empty(), "empty corpus");

    // Cold: a fresh session per compile, so every query misses.
    let mut entries: Vec<Entry> = sources
        .iter()
        .map(|(name, src)| {
            let mut best = f64::MAX;
            for _ in 0..reps {
                let mut session = CompileSession::new();
                let t = Instant::now();
                session.compile_source(src).expect("pass corpus compiles");
                best = best.min(t.elapsed().as_secs_f64());
            }
            Entry {
                file: name.clone(),
                cold_ms: best * 1e3,
                warm_ms: 0.0,
            }
        })
        .collect();

    // Warm: one persistent session over the whole corpus, pre-warmed
    // with an untimed pass — the serve steady state.
    let mut session = CompileSession::new();
    for (_, src) in &sources {
        session.compile_source(src).expect("pass corpus compiles");
    }
    session.reset_stats();
    for (entry, (_, src)) in entries.iter_mut().zip(&sources) {
        let mut best = f64::MAX;
        for _ in 0..reps {
            let t = Instant::now();
            session.compile_source(src).expect("pass corpus compiles");
            best = best.min(t.elapsed().as_secs_f64());
        }
        entry.warm_ms = best * 1e3;
    }
    assert_eq!(
        session.stats().misses(),
        0,
        "the timed warm passes must be pure cache hits"
    );

    let cold_total: f64 = entries.iter().map(|e| e.cold_ms).sum();
    let warm_total: f64 = entries.iter().map(|e| e.warm_ms).sum();
    let speedup = cold_total / warm_total;
    let n = entries.len();

    println!(
        "{:<36} {:>10} {:>10} {:>9}",
        "file", "cold ms", "warm ms", "speedup"
    );
    for e in &entries {
        println!(
            "{:<36} {:>10.3} {:>10.3} {:>8.1}x",
            e.file,
            e.cold_ms,
            e.warm_ms,
            e.cold_ms / e.warm_ms
        );
    }
    println!(
        "corpus: {n} programs, cold {:.1}ms ({:.0}/s), warm {:.2}ms ({:.0}/s), speedup {speedup:.1}x",
        cold_total,
        n as f64 / (cold_total / 1e3),
        warm_total,
        n as f64 / (warm_total / 1e3),
    );

    if let Some(path) = &json_path {
        std::fs::write(path, to_json(&entries)).expect("write json");
        println!("wrote {path}");
    }

    if let Some(path) = &baseline_path {
        let baseline = std::fs::read_to_string(path).expect("read baseline");
        let mut failed = false;
        for (key, new_ms) in [("cold_ms", cold_total), ("warm_ms", warm_total)] {
            let Some(old_ms) = summary_field(&baseline, key) else {
                continue;
            };
            if old_ms >= GATE_FLOOR_MS && new_ms > old_ms * REGRESSION_FACTOR {
                eprintln!(
                    "REGRESSION: corpus {key}: {new_ms:.1}ms vs baseline {old_ms:.1}ms (>25%)"
                );
                failed = true;
            }
        }
        if speedup < MIN_WARM_SPEEDUP {
            eprintln!("REGRESSION: warm speedup {speedup:.1}x fell below {MIN_WARM_SPEEDUP}x");
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!("no wall-clock regression >25% against {path}; warm speedup {speedup:.1}x >= {MIN_WARM_SPEEDUP}x");
    }
}

fn to_json(entries: &[Entry]) -> String {
    let cold_total: f64 = entries.iter().map(|e| e.cold_ms).sum();
    let warm_total: f64 = entries.iter().map(|e| e.warm_ms).sum();
    let n = entries.len();
    let mut s = String::from("{\n  \"schema\": \"descend-bench-compiler/1\",\n  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"file\": \"{}\", \"cold_ms\": {:.3}, \"warm_ms\": {:.3}, \"speedup\": {:.1}}}",
            e.file,
            e.cold_ms,
            e.warm_ms,
            e.cold_ms / e.warm_ms
        ));
        if i + 1 < entries.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str(&format!(
        "  ],\n  \"summary\": {{\"files\": {n}, \"cold_ms\": {cold_total:.3}, \"warm_ms\": {warm_total:.3}, \
         \"cold_programs_per_sec\": {:.1}, \"warm_programs_per_sec\": {:.1}, \"warm_speedup\": {:.1}}}\n}}\n",
        n as f64 / (cold_total / 1e3),
        n as f64 / (warm_total / 1e3),
        cold_total / warm_total,
    ));
    s
}

/// Extracts one numeric field from the `"summary"` line of the JSON this
/// tool itself writes — the same dependency-free ratchet parsing
/// `bench_sim` uses.
fn summary_field(json: &str, name: &str) -> Option<f64> {
    let line = json.lines().find(|l| l.contains("\"summary\""))?;
    let tag = format!("\"{name}\": ");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}
