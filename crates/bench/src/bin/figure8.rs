//! Regenerates the paper's Figure 8: relative runtimes between
//! handwritten CUDA and Descend for Reduce, Transpose, Scan and MM at
//! three footprints.
//!
//! Environment variables:
//! - `FIGURE8_RUNS` (default 5): runs per cell; the median is reported
//!   (the paper used 100 on real hardware; the simulator is deterministic
//!   per seed, so seeds only vary the input data).
//! - `FIGURE8_RACES=1`: enable the dynamic race detector (slower).
//! - `FIGURE8_JSON=<path>`: additionally write the cycle counts as a
//!   JSON array (one object per benchmark x footprint cell) for the
//!   scheduled CI job's regression-tracking artifact.
//!
//! Flags:
//! - `--trace[=DIR]` (default `figure8-traces`): additionally record one
//!   traced run per benchmark and write a Chrome-trace (Perfetto)
//!   timeline `<DIR>/<benchmark>.trace.json` showing the Descend and
//!   baseline launches back to back. Traces record every access group,
//!   so they run at the reduced parity-test footprints
//!   (`trace_param`) — the timeline shape is the artifact, not the
//!   scale. Deterministic: byte-identical across executor modes and
//!   simulation thread counts.

use descend_bench::{fmt_ratio, median_result};
use descend_benchmarks::{footprints, run_benchmark_traced, trace_param, ALL_BENCHMARKS};
use gpu_sim::trace::chrome_trace;
use gpu_sim::LaunchConfig;

/// Records one traced run per benchmark at reduced footprints and
/// writes one Chrome-trace timeline per benchmark into `dir`.
fn write_traces(dir: &str, cfg: &LaunchConfig) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create trace dir `{dir}`: {e}");
        return;
    }
    for kind in ALL_BENCHMARKS {
        let param = trace_param(kind);
        let r = run_benchmark_traced(kind, param, 0xC0FFEE, cfg);
        let mut launches = r.descend_traces;
        launches.extend(r.cuda_traces);
        let path = format!("{dir}/{}.trace.json", kind.name().to_lowercase());
        match std::fs::write(&path, chrome_trace(&launches, false)) {
            Ok(()) => println!("trace ({} @ {param}) written to {path}", kind.name()),
            Err(e) => eprintln!("warning: cannot write `{path}`: {e}"),
        }
    }
    println!();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let trace_dir = args.iter().find_map(|a| {
        if a == "--trace" {
            Some("figure8-traces".to_string())
        } else {
            a.strip_prefix("--trace=").map(str::to_string)
        }
    });
    let runs: usize = std::env::var("FIGURE8_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let cfg = LaunchConfig {
        detect_races: std::env::var("FIGURE8_RACES").as_deref() == Ok("1"),
        ..LaunchConfig::default()
    };
    if let Some(dir) = &trace_dir {
        write_traces(dir, &cfg);
    }
    println!("Figure 8 reproduction: relative kernel runtimes, Descend vs handwritten CUDA");
    println!("(simulated cycles; median of {runs} run(s); 1.000 = parity, lower = Descend faster)");
    println!();
    println!(
        "{:<10} {:>8} {:>10} {:>16} {:>14} {:>14}",
        "benchmark", "size", "param", "descend-cycles", "cuda-cycles", "descend/cuda"
    );
    let mut ratios = Vec::new();
    let mut json_cells = Vec::new();
    for kind in ALL_BENCHMARKS {
        for size in footprints(kind) {
            let r = median_result(kind, size.param, runs, &cfg);
            let ratio = r.descend_over_cuda();
            ratios.push(ratio);
            json_cells.push(format!(
                "  {{\"benchmark\": \"{}\", \"size\": \"{}\", \"param\": {}, \"descend_cycles\": {}, \"cuda_cycles\": {}, \"descend_over_cuda\": {}}}",
                kind.name(),
                size.name,
                size.param,
                r.descend_cycles,
                r.cuda_cycles,
                fmt_ratio(ratio)
            ));
            println!(
                "{:<10} {:>8} {:>10} {:>16} {:>14} {:>14}",
                kind.name(),
                size.name,
                size.param,
                r.descend_cycles,
                r.cuda_cycles,
                fmt_ratio(ratio)
            );
        }
        println!();
    }
    if let Ok(path) = std::env::var("FIGURE8_JSON") {
        let json = format!("[\n{}\n]\n", json_cells.join(",\n"));
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("warning: cannot write FIGURE8_JSON `{path}`: {e}");
        } else {
            println!("cycle-count JSON written to {path}");
            println!();
        }
    }
    let mean = ratios
        .iter()
        .product::<f64>()
        .powf(1.0 / ratios.len() as f64);
    let max_dev = ratios
        .iter()
        .map(|r| (r - 1.0).abs())
        .fold(0.0f64, f64::max);
    println!("geometric-mean descend/cuda: {}", fmt_ratio(mean));
    println!("max deviation from parity:   {:.1}%", max_dev * 100.0);
    println!();
    println!(
        "Paper's claim (Fig. 8): \"Descend and CUDA perform equally well for all\n\
         benchmarks and sizes with performance difference of less than 3%\"."
    );
    if max_dev <= 0.03 {
        println!("Reproduced: all deviations within 3%.");
    } else {
        println!(
            "Shape reproduced (parity); deviations up to {:.1}% reflect the\n\
             instruction-level cost model (see EXPERIMENTS.md).",
            max_dev * 100.0
        );
    }
}
