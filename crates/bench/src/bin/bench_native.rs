//! Native-speed execution benchmark: the same corpus host programs
//! through the simulator and through the C (+OpenMP) backend compiled
//! with the host toolchain.
//!
//! The simulator models a GPU and pays for that fidelity; the native
//! path is what the *generated code itself* costs on the host CPU.
//! Comparing the two bounds the simulator's interpretive overhead and
//! gives benchmarks a native-speed execution path for programs too
//! large to simulate comfortably.
//!
//! Usage:
//!   bench_native [--reps N] [--json PATH]
//!
//! Timings are min-of-N. The native figure times one full process run
//! (spawn + stdin feed + kernel + dump); C compilation happens once,
//! outside the timed region, as does the Rust-side compile. Exits 0
//! with a notice when no host C compiler is installed, so scheduled CI
//! can run it unconditionally.

use descend_compiler::Compiler;
use descend_native::Toolchain;
use gpu_sim::LaunchConfig;
use std::collections::HashMap;
use std::path::PathBuf;
use std::time::Instant;

const PROGRAMS: &[&str] = &[
    "scale.descend",
    "dot.descend",
    "histogram.descend",
    "reduce_tree.descend",
    "reduce_warp_shuffle.descend",
    "reduce_atomic.descend",
    "stencil1d_windows.descend",
];

struct Entry {
    program: String,
    sim_ms: f64,
    native_ms: f64,
}

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/descend")
}

fn min_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn main() {
    let mut reps = 5usize;
    let mut json_path: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--reps" => {
                reps = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--reps needs a number");
            }
            "--json" => {
                json_path = Some(it.next().expect("--json needs a path").clone());
            }
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }

    let Some(tc) = Toolchain::detect() else {
        eprintln!("SKIP: no host C compiler found (tried $CC, cc, gcc, clang)");
        return;
    };
    eprintln!(
        "toolchain: {} ({})",
        tc.cc,
        if tc.openmp { "OpenMP" } else { "no OpenMP" }
    );

    let compiler = Compiler::with_backends(&["c"]).expect("c backend registered");
    let cfg = LaunchConfig::default();
    let inputs: HashMap<String, Vec<f64>> = HashMap::new();
    let mut entries = Vec::new();
    for file in PROGRAMS {
        let src = std::fs::read_to_string(corpus_dir().join(file))
            .unwrap_or_else(|e| panic!("{file}: {e}"));
        let compiled = compiler
            .compile_source(&src)
            .unwrap_or_else(|e| panic!("{file}: compile failed:\n{e}"));
        let exe = tc
            .compile(compiled.target_source("c").expect("c selected"))
            .unwrap_or_else(|e| panic!("{file}: {e}"));

        let sim_ms = min_ms(reps, || {
            compiled
                .run_host("main", &inputs, &cfg)
                .expect("simulated run");
        });
        let native_ms = min_ms(reps, || {
            exe.run("main", &inputs).expect("native run");
        });
        entries.push(Entry {
            program: file.trim_end_matches(".descend").to_string(),
            sim_ms,
            native_ms,
        });
    }

    println!(
        "{:<22} {:>12} {:>12} {:>9}",
        "program", "sim ms", "native ms", "ratio"
    );
    for e in &entries {
        println!(
            "{:<22} {:>12.3} {:>12.3} {:>8.1}x",
            e.program,
            e.sim_ms,
            e.native_ms,
            e.sim_ms / e.native_ms
        );
    }

    if let Some(path) = json_path {
        let mut out =
            String::from("{\n  \"schema\": \"descend-bench-native/1\",\n  \"entries\": [\n");
        for (i, e) in entries.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"program\": \"{}\", \"sim_ms\": {:.6}, \"native_ms\": {:.6}}}{}\n",
                e.program,
                e.sim_ms,
                e.native_ms,
                if i + 1 < entries.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        std::fs::write(&path, out).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("wrote {path}");
    }
}
