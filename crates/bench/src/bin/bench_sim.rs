//! Simulator throughput benchmark — the source of `BENCH_SIM.json`.
//!
//! Times every Figure 8 entry through the simulator's default
//! warp-vectorized executor at two footprints (interpreter-scale, the
//! sizes the pre-warp simulator could sustain, and paper-scale, the
//! 2^20-element sizes the paper evaluates), and compares against the
//! lane-stepping reference interpreter at the largest footprint the two
//! modes have in common. Wall-clock is launch-only (allocation and
//! readback excluded), min-of-N to shrug off scheduler noise.
//!
//! Usage:
//!   bench_sim [--reps N] [--json PATH] [--baseline PATH] [--no-reference]
//!             [--trace DIR]
//!
//! `--json` writes the machine-readable results. `--baseline` re-reads a
//! previously committed file and exits non-zero when any entry above the
//! noise floor regressed by more than 25% wall-clock — the scheduled CI
//! bench job runs with `--baseline BENCH_SIM.json` as a perf ratchet.
//! `--trace DIR` additionally records one traced run per benchmark at
//! the reduced parity-test footprints and writes the raw launch-trace
//! JSON per launch into DIR (deterministic artifacts; tracing never
//! runs inside the timed section, so the timings above are unaffected).

use descend_benchmarks::sources::{BLOCK_SIZE, HIST_BINS, HIST_BLOCK, STENCIL_BLOCK};
use descend_benchmarks::{baselines, run_benchmark_traced, trace_param, ALL_BENCHMARKS};
use gpu_sim::trace::launch_trace_json;
use gpu_sim::{ElemTy, ExecMode, Gpu, LaunchConfig};
use std::time::Instant;

/// Entries above this baseline wall-clock participate in the >25%
/// regression gate; smaller ones are timer noise.
const GATE_FLOOR_MS: f64 = 20.0;
const REGRESSION_FACTOR: f64 = 1.25;

#[derive(Clone, Copy, PartialEq)]
enum Scale {
    Interpreter,
    Paper,
}

impl Scale {
    fn name(self) -> &'static str {
        match self {
            Scale::Interpreter => "interpreter",
            Scale::Paper => "paper",
        }
    }
}

struct Entry {
    bench: &'static str,
    param: usize,
    scale: Scale,
    detect_races: bool,
    warp_ms: f64,
    reference_ms: Option<f64>,
    speedup: Option<f64>,
}

fn cfg(exec: ExecMode, detect_races: bool) -> LaunchConfig {
    LaunchConfig {
        exec,
        detect_races,
        ..LaunchConfig::default()
    }
}

/// Launch-only wall-clock for one benchmark at one footprint, min over
/// `reps` fresh GPUs (state never carries across reps).
fn time_bench(bench: &'static str, param: usize, cfg: &LaunchConfig, reps: usize) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..reps {
        best = best.min(run_once(bench, param, cfg));
    }
    best
}

/// One full run of a benchmark; returns seconds spent inside
/// `Gpu::launch` (summed over the benchmark's kernels).
fn run_once(bench: &str, param: usize, cfg: &LaunchConfig) -> f64 {
    let mut gpu = Gpu::new();
    match bench {
        "Reduce" | "ReduceShfl" => {
            let (n, bs) = (param, BLOCK_SIZE);
            let k = if bench == "Reduce" {
                baselines::reduce(n, bs)
            } else {
                baselines::reduce_shuffle(n, bs)
            };
            let data: Vec<f64> = (0..n).map(|i| (i % 17) as f64).collect();
            let inp = gpu.alloc_f64(&data);
            let out = gpu.alloc_zeroed(ElemTy::F64, n / bs);
            let t = Instant::now();
            gpu.launch(
                &k,
                [(n / bs) as u64, 1, 1],
                [bs as u64, 1, 1],
                &[inp, out],
                cfg,
            )
            .expect(bench);
            t.elapsed().as_secs_f64()
        }
        "Scan" => {
            let (n, bs) = (param, BLOCK_SIZE);
            let nb = n / bs;
            let k1 = baselines::scan_blocks(n, bs);
            let k2 = baselines::scan_add_offsets(n, bs);
            let data: Vec<f64> = (0..n).map(|i| (i % 9) as f64).collect();
            let io = gpu.alloc_f64(&data);
            let sums = gpu.alloc_zeroed(ElemTy::F64, nb);
            let t = Instant::now();
            gpu.launch(&k1, [nb as u64, 1, 1], [bs as u64, 1, 1], &[io, sums], cfg)
                .expect("scan_blocks");
            let mut elapsed = t.elapsed().as_secs_f64();
            let block_sums = gpu.read_f64(sums);
            let mut offsets = vec![0.0; nb];
            for i in 1..nb {
                offsets[i] = offsets[i - 1] + block_sums[i - 1];
            }
            let offs = gpu.alloc_f64(&offsets);
            let t = Instant::now();
            gpu.launch(&k2, [nb as u64, 1, 1], [bs as u64, 1, 1], &[io, offs], cfg)
                .expect("scan_add_offsets");
            elapsed += t.elapsed().as_secs_f64();
            elapsed
        }
        "Histogram" => {
            let (n, bs, bins) = (param, HIST_BLOCK, HIST_BINS);
            let k = baselines::histogram(n, bs, bins);
            let data: Vec<f64> = (0..n).map(|i| (i % 4096) as f64).collect();
            let inp = gpu.alloc_scalars(ElemTy::I32, &data);
            let hist = gpu.alloc_zeroed(ElemTy::I32, bins);
            let t = Instant::now();
            gpu.launch(
                &k,
                [(n / bs) as u64, 1, 1],
                [bs as u64, 1, 1],
                &[inp, hist],
                cfg,
            )
            .expect("histogram");
            t.elapsed().as_secs_f64()
        }
        "Stencil" => {
            let (n, bs) = (param, STENCIL_BLOCK);
            let k = baselines::stencil(n, bs);
            let data: Vec<f64> = (0..n + 2).map(|i| (i % 13) as f64).collect();
            let inp = gpu.alloc_f64(&data);
            let out = gpu.alloc_zeroed(ElemTy::F64, n);
            let t = Instant::now();
            gpu.launch(
                &k,
                [(n / bs) as u64, 1, 1],
                [bs as u64, 1, 1],
                &[inp, out],
                cfg,
            )
            .expect("stencil");
            t.elapsed().as_secs_f64()
        }
        "Transpose" => {
            let n = param;
            let nb = (n / 32) as u64;
            let k = baselines::transpose(n);
            let data: Vec<f64> = (0..n * n).map(|i| (i % 11) as f64).collect();
            let inp = gpu.alloc_f64(&data);
            let out = gpu.alloc_zeroed(ElemTy::F64, n * n);
            let t = Instant::now();
            gpu.launch(&k, [nb, nb, 1], [32, 8, 1], &[inp, out], cfg)
                .expect("transpose");
            t.elapsed().as_secs_f64()
        }
        "MM" => {
            let n = param;
            let nb = (n / 32) as u64;
            let k = baselines::matmul(n);
            let a: Vec<f64> = (0..n * n).map(|i| (i % 7) as f64).collect();
            let b: Vec<f64> = (0..n * n).map(|i| (i % 5) as f64).collect();
            let da = gpu.alloc_f64(&a);
            let db = gpu.alloc_f64(&b);
            let dc = gpu.alloc_zeroed(ElemTy::F64, n * n);
            let t = Instant::now();
            gpu.launch(&k, [nb, nb, 1], [32, 32, 1], &[da, db, dc], cfg)
                .expect("matmul");
            t.elapsed().as_secs_f64()
        }
        other => panic!("unknown bench {other}"),
    }
}

/// (name, interpreter-scale param, paper-scale param).
const BENCHES: [(&str, usize, usize); 7] = [
    ("Reduce", 1 << 14, 1 << 20),
    ("ReduceShfl", 1 << 14, 1 << 20),
    ("Scan", 1 << 14, 1 << 20),
    ("Histogram", 1 << 14, 1 << 20),
    ("Stencil", 1 << 14, 1 << 20),
    ("Transpose", 128, 1024),
    ("MM", 64, 256),
];

fn main() {
    let mut reps = 5usize;
    let mut json_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut with_reference = true;
    let mut only: Option<String> = None;
    let mut trace_dir: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--reps" => reps = args.next().and_then(|v| v.parse().ok()).expect("--reps N"),
            "--json" => json_path = Some(args.next().expect("--json PATH")),
            "--baseline" => baseline_path = Some(args.next().expect("--baseline PATH")),
            "--no-reference" => with_reference = false,
            "--only" => only = Some(args.next().expect("--only BENCH")),
            "--trace" => trace_dir = Some(args.next().expect("--trace DIR")),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    // Every entry in both race settings: `detect_races: false` is the
    // default launch config; `detect_races: true` is the race-checked
    // pipeline the test suite runs, and the mode where the old
    // interpreter paid for the append-only access log the shadow
    // detector replaced.
    let mut entries = Vec::new();
    for (bench, interp_n, paper_n) in BENCHES {
        if only.as_deref().is_some_and(|o| o != bench) {
            continue;
        }
        for (scale, n) in [(Scale::Interpreter, interp_n), (Scale::Paper, paper_n)] {
            for races in [false, true] {
                let warp_ms = time_bench(bench, n, &cfg(ExecMode::Warp, races), reps) * 1e3;
                // Lane-stepping comparison at the largest common
                // footprint: the same min-of-N estimator as the warp
                // side, with the rep count halved (bounded below by 2)
                // because the reference is slower by an order of
                // magnitude — asymmetric sampling would bias the ratio
                // on a machine with bursty background load.
                let ref_reps = (reps / 2).max(2);
                let reference_ms = (with_reference && scale == Scale::Paper).then(|| {
                    time_bench(bench, n, &cfg(ExecMode::Reference, races), ref_reps) * 1e3
                });
                let speedup = reference_ms.map(|r| r / warp_ms);
                entries.push(Entry {
                    bench,
                    param: n,
                    scale,
                    detect_races: races,
                    warp_ms,
                    reference_ms,
                    speedup,
                });
            }
        }
    }

    println!(
        "{:<12} {:>9} {:<12} {:>6} {:>11} {:>13} {:>8}",
        "bench", "param", "scale", "races", "warp ms", "reference ms", "speedup"
    );
    for e in &entries {
        println!(
            "{:<12} {:>9} {:<12} {:>6} {:>11.2} {:>13} {:>8}",
            e.bench,
            e.param,
            e.scale.name(),
            if e.detect_races { "on" } else { "off" },
            e.warp_ms,
            e.reference_ms.map_or("-".into(), |v| format!("{v:.1}")),
            e.speedup.map_or("-".into(), |v| format!("{v:.1}x")),
        );
    }

    if let Some((total, off, on)) = aggregate(&entries) {
        println!(
            "paper-scale aggregate speedup (total reference ms / total warp ms): \
             {total:.1}x overall, {off:.1}x races off, {on:.1}x races on"
        );
    }

    if let Some(path) = &json_path {
        std::fs::write(path, to_json(&entries)).expect("write json");
        println!("wrote {path}");
    }

    if let Some(dir) = &trace_dir {
        // Outside the timed loops by construction: fresh traced runs at
        // reduced footprints, one raw launch-trace JSON per launch.
        std::fs::create_dir_all(dir).expect("create trace dir");
        for kind in ALL_BENCHMARKS {
            if only.as_deref().is_some_and(|o| o != kind.name()) {
                continue;
            }
            let r = run_benchmark_traced(
                kind,
                trace_param(kind),
                0xC0FFEE,
                &cfg(ExecMode::Warp, false),
            );
            let sides = [("descend", &r.descend_traces), ("cuda", &r.cuda_traces)];
            for (side, traces) in sides {
                for (i, tr) in traces.iter().enumerate() {
                    let path =
                        format!("{dir}/{}-{side}-{i}.trace.json", kind.name().to_lowercase());
                    std::fs::write(&path, launch_trace_json(tr)).expect("write trace");
                    println!("wrote {path}");
                }
            }
        }
    }

    if let Some(path) = &baseline_path {
        let baseline = std::fs::read_to_string(path).expect("read baseline");
        let old = parse_entries(&baseline);
        let mut regressed = false;
        for e in &entries {
            let key = (e.bench.to_string(), e.param, e.detect_races);
            let Some(old_ms) = old.get(&key) else {
                continue;
            };
            if *old_ms >= GATE_FLOOR_MS && e.warp_ms > old_ms * REGRESSION_FACTOR {
                eprintln!(
                    "REGRESSION: {} param={} races={}: {:.1}ms vs baseline {:.1}ms (>25%)",
                    e.bench, e.param, e.detect_races, e.warp_ms, old_ms
                );
                regressed = true;
            }
        }
        if regressed {
            std::process::exit(1);
        }
        println!("no wall-clock regression >25% against {path}");
    }
}

fn to_json(entries: &[Entry]) -> String {
    let mut s = String::from("{\n  \"schema\": \"descend-bench-sim/1\",\n  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"bench\": \"{}\", \"param\": {}, \"scale\": \"{}\", \"detect_races\": {}, \"warp_ms\": {:.3}",
            e.bench,
            e.param,
            e.scale.name(),
            e.detect_races,
            e.warp_ms
        ));
        if let (Some(r), Some(sp)) = (e.reference_ms, e.speedup) {
            s.push_str(&format!(", \"reference_ms\": {r:.3}, \"speedup\": {sp:.2}"));
        }
        s.push('}');
        if i + 1 < entries.len() {
            s.push(',');
        }
        s.push('\n');
    }
    if let Some((total, off, on)) = aggregate(entries) {
        s.push_str(&format!(
            "  ],\n  \"summary\": {{\"paper_scale_speedup\": {total:.2}, \
             \"races_off_speedup\": {off:.2}, \"races_on_speedup\": {on:.2}}}\n}}\n"
        ));
    } else {
        s.push_str("  ]\n}\n");
    }
    s
}

/// Wall-clock improvement over the lane-stepping reference at the
/// largest common (paper-scale) footprint, aggregated over the whole
/// corpus as total reference time / total warp time — `(overall,
/// races off, races on)`. `None` until reference timings exist.
fn aggregate(entries: &[Entry]) -> Option<(f64, f64, f64)> {
    let sums = |races: Option<bool>| -> Option<f64> {
        let (mut w, mut r) = (0.0, 0.0);
        for e in entries {
            if e.scale == Scale::Paper && races.is_none_or(|want| e.detect_races == want) {
                if let Some(rm) = e.reference_ms {
                    w += e.warp_ms;
                    r += rm;
                }
            }
        }
        (w > 0.0).then(|| r / w)
    };
    Some((sums(None)?, sums(Some(false))?, sums(Some(true))?))
}

/// Minimal parser for the JSON this tool itself writes: one entry
/// object per line, fields in fixed order. Robust enough for the CI
/// ratchet without pulling in a JSON dependency.
fn parse_entries(json: &str) -> std::collections::HashMap<(String, usize, bool), f64> {
    let mut map = std::collections::HashMap::new();
    for line in json.lines() {
        let line = line.trim().trim_end_matches(',');
        if !line.starts_with('{') {
            continue;
        }
        let field = |name: &str| -> Option<String> {
            let tag = format!("\"{name}\": ");
            let start = line.find(&tag)? + tag.len();
            let rest = &line[start..];
            let end = rest.find([',', '}']).unwrap_or(rest.len());
            Some(rest[..end].trim().trim_matches('"').to_string())
        };
        let (Some(bench), Some(param), Some(races), Some(warp_ms)) = (
            field("bench"),
            field("param").and_then(|v| v.parse::<usize>().ok()),
            field("detect_races").and_then(|v| v.parse::<bool>().ok()),
            field("warp_ms").and_then(|v| v.parse::<f64>().ok()),
        ) else {
            continue;
        };
        map.insert((bench, param, races), warp_ms);
    }
    map
}
