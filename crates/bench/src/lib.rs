//! Benchmark harness for the Figure 8 reproduction.
//!
//! - `cargo run --release -p descend-bench --bin figure8` regenerates the
//!   paper's Figure 8 table (relative runtimes, Descend vs handwritten
//!   CUDA, four benchmarks x three footprints).
//! - `cargo bench -p descend-bench` runs the Criterion benches: one group
//!   per paper benchmark (simulated execution of both versions), compiler
//!   throughput, and the loop-unrolling ablation.

use descend_benchmarks::{run_benchmark, BenchKind, BenchResult};
use gpu_sim::LaunchConfig;

/// Runs one benchmark `runs` times with distinct seeds and returns the
/// median-by-cycles result (cycles are deterministic per seed; seeds only
/// vary the input data).
pub fn median_result(
    kind: BenchKind,
    param: usize,
    runs: usize,
    cfg: &LaunchConfig,
) -> BenchResult {
    assert!(runs >= 1);
    let mut results: Vec<BenchResult> = (0..runs)
        .map(|r| run_benchmark(kind, param, 0xC0FFEE + r as u64, cfg))
        .collect();
    results.sort_by_key(|r| r.descend_cycles);
    results.swap_remove(results.len() / 2)
}

/// Formats a ratio as the figure's bar value.
pub fn fmt_ratio(r: f64) -> String {
    format!("{r:.3}")
}
