//! Ablation: unrolled vs looped baselines.
//!
//! Descend unrolls static for-nat loops (like `nvcc -O3` does); the
//! handwritten baselines are transcribed the same way. This ablation
//! quantifies what a *non-unrolled* baseline would cost in the model, to
//! show the comparison in Figure 8 is not an artifact of unrolling.

use criterion::{criterion_group, criterion_main, Criterion};
use descend_benchmarks::baselines;
use gpu_sim::{Gpu, LaunchConfig};

fn ablation(c: &mut Criterion) {
    let (n, bs) = (1 << 15, 512);
    let data: Vec<f64> = (0..n).map(|i| (i % 11) as f64).collect();
    let cfg = LaunchConfig::default();
    let mut group = c.benchmark_group("reduce-loop-ablation");
    group.sample_size(10);
    for (name, kernel) in [
        ("unrolled", baselines::reduce(n, bs)),
        ("looped", baselines::reduce_looped(n, bs)),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut gpu = Gpu::new();
                let inp = gpu.alloc_f64(&data);
                let out = gpu.alloc_f64(&vec![0.0; n / bs]);
                let stats = gpu
                    .launch(
                        &kernel,
                        [(n / bs) as u64, 1, 1],
                        [bs as u64, 1, 1],
                        &[inp, out],
                        &cfg,
                    )
                    .expect("clean");
                stats.cycles
            })
        });
    }
    group.finish();
}

criterion_group!(benches, ablation);
criterion_main!(benches);
