//! Compiler-throughput benches: how fast the Descend pipeline itself is
//! (parse + type/borrow check + lower + CUDA emission) on the benchmark
//! programs. Not a paper figure, but useful to track the cost of the
//! extended borrow checking.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use descend_benchmarks::sources;
use descend_compiler::Compiler;

fn compile_benches(c: &mut Criterion) {
    let compiler = Compiler::new();
    let cases: Vec<(&str, String)> = vec![
        ("reduce", sources::reduce(8192)),
        ("transpose", sources::transpose(256)),
        ("scan", sources::scan_blocks(8192)),
        ("matmul", sources::matmul(128)),
    ];
    let mut group = c.benchmark_group("compile");
    group.sample_size(20);
    for (name, src) in &cases {
        group.bench_with_input(BenchmarkId::from_parameter(name), src, |b, src| {
            b.iter(|| compiler.compile_source(src).expect("compiles"))
        });
    }
    group.finish();
}

criterion_group!(benches, compile_benches);
criterion_main!(benches);
