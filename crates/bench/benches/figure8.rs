//! Criterion benches for the paper's Figure 8: one group per benchmark,
//! measuring the simulated execution of the Descend-compiled kernel and
//! the handwritten CUDA baseline on the same workload.
//!
//! Criterion measures the *simulator's wall time*, which tracks the
//! modeled work; the authoritative Figure 8 metric is the modeled cycle
//! count printed by the `figure8` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use descend_benchmarks::{run_benchmark, BenchKind};
use gpu_sim::LaunchConfig;

/// Small footprints so `cargo bench` stays quick; the binary sweeps the
/// full small/medium/large range.
fn bench_param(kind: BenchKind) -> usize {
    match kind {
        BenchKind::Reduce => 1 << 15,
        BenchKind::Transpose => 128,
        BenchKind::Scan => 1 << 14,
        BenchKind::Matmul => 64,
        BenchKind::Histogram => 1 << 14,
        BenchKind::ReduceShuffle => 1 << 15,
        BenchKind::Stencil => 1 << 14,
    }
}

fn figure8(c: &mut Criterion) {
    let cfg = LaunchConfig::default();
    for kind in [
        BenchKind::Reduce,
        BenchKind::Transpose,
        BenchKind::Scan,
        BenchKind::Matmul,
        BenchKind::Histogram,
        BenchKind::ReduceShuffle,
        BenchKind::Stencil,
    ] {
        let mut group = c.benchmark_group(kind.name());
        group.sample_size(10);
        let param = bench_param(kind);
        group.bench_with_input(
            BenchmarkId::new("descend-vs-cuda", param),
            &param,
            |b, &p| {
                b.iter(|| {
                    let r = run_benchmark(kind, p, 42, &cfg);
                    assert!(r.descend_cycles > 0 && r.cuda_cycles > 0);
                    r.descend_over_cuda()
                })
            },
        );
        group.finish();
    }
}

criterion_group!(benches, figure8);
criterion_main!(benches);
